//! The deterministic multi-tenant job scheduler over the simulated
//! GPU fleet.
//!
//! The scheduler is a discrete-event simulation in integer-nanosecond
//! *model time*: arrivals, dispatches, completions, and device kills
//! are events; service durations come from the [`DeviceSpec`] cost
//! model (PCIe transfers + back-projection throughput), never from a
//! wall clock. Given the same workload, configuration, and fault plan,
//! a run therefore produces byte-identical schedules, logs, and metric
//! exports — while every job's *numerics* are computed for real, so
//! outputs are bitwise comparable against standalone
//! [`fdk_reconstruct_configured`](scalefbp::fdk_reconstruct_configured)
//! runs.
//!
//! Scheduling policy, in one paragraph: jobs are admitted against a
//! global memory-backlog budget and queued FIFO. Each device runs one
//! dispatch at a time. A dispatch is either a *batch* of consecutive
//! small in-core jobs (packed under the device's memory capacity to
//! amortise the per-dispatch overhead) or one *slice* of a long
//! out-of-core job (`slice_slabs` durable checkpoint commits, after
//! which the job is preempted and requeued — so a long job never
//! monopolises a device, and can migrate to a different device for its
//! next slice). Batch gathering may pass over a queued job only while
//! that job's wait is below the aging limit; an aged job blocks all
//! younger work (FIFO-with-aging), which bounds every job's wait.

use std::path::PathBuf;
use std::sync::Arc;

use scalefbp::{
    fdk_reconstruct_configured, BackendChoice, FdkConfig, OutOfCoreReconstructor,
    ReconstructionError,
};
use scalefbp_faults::{crc32, NoFaults};
use scalefbp_geom::{CbctGeometry, Volume, VolumeDecomposition};
use scalefbp_gpusim::{Device, DeviceBuffer, DeviceSpec};
use scalefbp_iosim::StorageEndpoint;
use scalefbp_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

use crate::fleetfaults::FleetFaultPlan;
use crate::job::{JobClass, JobSpec, RejectReason};
use crate::quantile::{histogram_quantile, LATENCY_BOUNDS_NANOS};

/// Bytes of the per-projection 3×4 f32 matrix table per projection.
const MATS_BYTES_PER_PROJ: u64 = 12 * 4;

/// Overrun margin before a dispatch's device is declared a straggler:
/// a dispatch still running at `start + margin × healthy_duration` is
/// evidence the device is degraded. 5/4 keeps detection well before a
/// ×2 slowdown completes while never firing on a healthy device (whose
/// dispatches finish exactly at 1× the healthy duration).
const STRAGGLER_MARGIN_NUM: u64 = 5;
const STRAGGLER_MARGIN_DEN: u64 = 4;

/// Converts simulated seconds to integer model-time nanoseconds.
fn nanos(secs: f64) -> u64 {
    debug_assert!(secs.is_finite() && secs >= 0.0);
    (secs * 1e9).round() as u64
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of fleet devices (all share one spec — required so a
    /// long job's checkpoint fingerprint stays valid across devices).
    pub devices: usize,
    /// The device spec of every fleet member.
    pub device: DeviceSpec,
    /// Global memory-backlog budget: the sum of working sets of all
    /// queued + running jobs may not exceed this. `None` defaults to
    /// `devices × device.memory_bytes`.
    pub memory_budget_bytes: Option<u64>,
    /// FIFO-with-aging limit: batch gathering may overtake a queued
    /// job only while `now - enqueue ≤ aging_nanos`.
    pub aging_nanos: u64,
    /// Maximum small jobs per batched dispatch.
    pub max_batch: usize,
    /// Fixed per-dispatch overhead (host setup + launch latency) in
    /// simulated seconds — the cost batching amortises.
    pub dispatch_overhead_secs: f64,
    /// Directory under which long jobs keep their checkpoint stores
    /// (one subdirectory per job).
    pub checkpoint_root: PathBuf,
    /// Keep every completed volume in the report (tests); benches
    /// leave this off and rely on the recorded CRCs.
    pub keep_volumes: bool,
    /// Fleet-level fault plan (device kills, slab corruption, compute
    /// slowdowns).
    pub faults: FleetFaultPlan,
    /// Hedge small-job batches stuck on a detected-slow device by
    /// duplicating them onto an idle healthy device (first completion
    /// wins; the duplicate is deduplicated). Inert without slowdowns in
    /// the fault plan — a healthy fleet never triggers detection.
    /// Disable for a wait-it-out baseline.
    pub hedging: bool,
    /// Compute backend every job's numerics run on. Scheduling always
    /// uses the [`DeviceSpec`] cost model, so the schedule, logs and
    /// metric exports are identical on both compute backends — only
    /// the executor behind each job changes (see `docs/backends.md`).
    pub backend: BackendChoice,
}

impl ServeConfig {
    /// A config with policy defaults: budget = fleet capacity, 50 ms
    /// aging, batches of up to 8, 5 ms dispatch overhead, no faults.
    pub fn new(devices: usize, device: DeviceSpec, checkpoint_root: impl Into<PathBuf>) -> Self {
        assert!(devices >= 1, "fleet must have at least one device");
        ServeConfig {
            devices,
            device,
            memory_budget_bytes: None,
            aging_nanos: 50_000_000,
            max_batch: 8,
            dispatch_overhead_secs: 0.005,
            checkpoint_root: checkpoint_root.into(),
            keep_volumes: false,
            faults: FleetFaultPlan::none(),
            hedging: true,
            backend: BackendChoice::default(),
        }
    }

    /// Overrides the global memory-backlog budget.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Overrides the aging limit.
    pub fn with_aging_nanos(mut self, nanos: u64) -> Self {
        self.aging_nanos = nanos;
        self
    }

    /// Overrides the batch cap (1 disables batching).
    pub fn with_max_batch(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.max_batch = n;
        self
    }

    /// Overrides the per-dispatch overhead.
    pub fn with_dispatch_overhead_secs(mut self, secs: f64) -> Self {
        self.dispatch_overhead_secs = secs;
        self
    }

    /// Keeps completed volumes in the report.
    pub fn keeping_volumes(mut self) -> Self {
        self.keep_volumes = true;
        self
    }

    /// Installs a fleet fault plan.
    pub fn with_faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables or disables hedged dispatch (on by default; disabling
    /// gives the wait-it-out straggler baseline).
    pub fn with_hedging(mut self, hedging: bool) -> Self {
        self.hedging = hedging;
        self
    }

    /// Selects the compute backend jobs execute on.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// The effective global memory budget.
    pub fn budget_bytes(&self) -> u64 {
        self.memory_budget_bytes
            .unwrap_or(self.devices as u64 * self.device.memory_bytes)
    }
}

/// The reconstruction configuration the scheduler uses for `job` —
/// exposed so tests can reproduce any job standalone and compare
/// volumes bitwise.
pub fn job_config(cfg: &ServeConfig, job: &JobSpec) -> FdkConfig {
    let c = FdkConfig::new(job.geom.clone())
        .with_device(cfg.device.clone())
        .with_backend(cfg.backend);
    match job.class {
        JobClass::Small => c,
        JobClass::Long { nc, .. } => c.with_nc(nc),
    }
}

/// Analytic device cost of one small in-core job: move the projections
/// in, back-project every voxel against every projection, move the
/// volume out.
fn small_cost(g: &CbctGeometry) -> (u64, u64, u64) {
    let h2d = g.projection_bytes() as u64;
    let updates = (g.nx * g.ny * g.nz) as u64 * g.np as u64;
    let d2h = g.volume_bytes() as u64;
    (h2d, updates, d2h)
}

fn small_secs(spec: &DeviceSpec, g: &CbctGeometry) -> f64 {
    let (h2d, updates, d2h) = small_cost(g);
    spec.transfer_secs(h2d) + spec.backprojection_secs(updates) + spec.transfer_secs(d2h)
}

/// Per-slab analytic costs of a long job's out-of-core plan, mirroring
/// the streaming loop in `OutOfCoreReconstructor` exactly: the first
/// computed slab of a run loads its full row range, later slabs load
/// only the differential rows.
#[derive(Clone, Copy, Debug)]
struct TaskCost {
    full_rows_bytes: u64,
    new_rows_bytes: u64,
    updates: u64,
    slab_bytes: u64,
}

fn long_plan(cfg_job: &FdkConfig) -> Result<(Vec<TaskCost>, u64), ReconstructionError> {
    let rec = OutOfCoreReconstructor::new(cfg_job.clone())?;
    let g = &cfg_job.geometry;
    let decomp = VolumeDecomposition::full(g, rec.nb());
    let row_bytes = (g.np * g.nu * 4) as u64;
    let costs = decomp
        .tasks()
        .iter()
        .map(|t| TaskCost {
            full_rows_bytes: t.rows.len() as u64 * row_bytes,
            new_rows_bytes: t.new_rows.len() as u64 * row_bytes,
            updates: (g.nx * g.ny * t.nz()) as u64 * g.np as u64,
            slab_bytes: (g.nx * g.ny * t.nz() * 4) as u64,
        })
        .collect();
    let window_bytes = (rec.window_rows() * g.np * g.nu * 4) as u64;
    let slab_bytes = (g.nx * g.ny * rec.nb() * 4) as u64;
    let ws = window_bytes + slab_bytes + g.np as u64 * MATS_BYTES_PER_PROJ;
    Ok((costs, ws))
}

/// Simulated seconds of one slice covering tasks `[from, to)`.
fn slice_secs(spec: &DeviceSpec, costs: &[TaskCost], from: usize, to: usize) -> f64 {
    let mut secs = 0.0;
    for (i, c) in costs[from..to].iter().enumerate() {
        let rows = if i == 0 {
            c.full_rows_bytes
        } else {
            c.new_rows_bytes
        };
        if rows > 0 {
            secs += spec.transfer_secs(rows);
        }
        secs += spec.backprojection_secs(c.updates) + spec.transfer_secs(c.slab_bytes);
    }
    secs
}

/// Modelled device seconds of the whole job (all slices, plus one
/// dispatch overhead per slice) — the capacity-planning quantity load
/// generators use to pick arrival rates.
pub fn job_service_secs(cfg: &ServeConfig, job: &JobSpec) -> f64 {
    match job.class {
        JobClass::Small => cfg.dispatch_overhead_secs + small_secs(&cfg.device, &job.geom),
        JobClass::Long { slice_slabs, .. } => {
            let (costs, _) = long_plan(&job_config(cfg, job)).expect("long job plan");
            let mut secs = 0.0;
            let mut from = 0;
            while from < costs.len() {
                let to = (from + slice_slabs.max(1)).min(costs.len());
                secs += cfg.dispatch_overhead_secs + slice_secs(&cfg.device, &costs, from, to);
                from = to;
            }
            secs
        }
    }
}

/// A structured scheduler failure. These replace the panicking
/// `expect()`s that used to sit on the admission/dispatch path: a
/// degraded fleet (reservation pressure, a failing reconstruction, an
/// unwritable checkpoint store) now surfaces an error the caller can
/// handle instead of aborting the whole scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A device-memory reservation failed for work the admission check
    /// had already sized against capacity.
    Reservation {
        /// Fleet device the reservation was attempted on.
        device: usize,
        /// Job whose working set could not be reserved.
        job: usize,
        /// The underlying device error.
        detail: String,
    },
    /// An admitted job's reconstruction failed at completion time.
    Reconstruction {
        /// The failing job.
        job: usize,
        /// The underlying reconstruction error.
        detail: String,
    },
    /// A checkpoint-store filesystem operation failed.
    CheckpointIo {
        /// The job whose store was being touched.
        job: usize,
        /// What failed.
        detail: String,
    },
    /// An internal scheduling invariant broke (a bug, not a fault).
    Scheduling(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Reservation {
                device,
                job,
                detail,
            } => write!(
                f,
                "device {device} reservation for job {job} failed: {detail}"
            ),
            ServeError::Reconstruction { job, detail } => {
                write!(f, "reconstruction of job {job} failed: {detail}")
            }
            ServeError::CheckpointIo { job, detail } => {
                write!(f, "checkpoint I/O for job {job} failed: {detail}")
            }
            ServeError::Scheduling(msg) => write!(f, "scheduler invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A rejected admission.
#[derive(Clone, Debug)]
pub struct Rejection {
    /// Job id.
    pub id: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Arrival time.
    pub arrival_nanos: u64,
    /// Why.
    pub reason: RejectReason,
}

/// Completion record of one admitted job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Job id.
    pub id: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// Class name (`small`/`long`).
    pub class: &'static str,
    /// Arrival time.
    pub arrival_nanos: u64,
    /// First dispatch time.
    pub first_start_nanos: u64,
    /// Completion time.
    pub finish_nanos: u64,
    /// Devices the job's dispatches ran on, in order (a long job that
    /// migrated lists more than one distinct device).
    pub devices: Vec<usize>,
    /// Slices executed (1 for small jobs).
    pub slices: usize,
    /// Times the job was requeued by a fault (kill or corruption).
    pub requeues: usize,
    /// Size of the batch the job completed in (1 if unbatched).
    pub batch_size: usize,
    /// Reserved working-set bytes.
    pub working_set_bytes: u64,
    /// CRC-32 of the output volume's f32 bit patterns.
    pub volume_crc: u32,
}

impl JobRecord {
    /// End-to-end latency (arrival → completion).
    pub fn latency_nanos(&self) -> u64 {
        self.finish_nanos - self.arrival_nanos
    }

    /// Whether the job ran on more than one distinct device.
    pub fn migrated(&self) -> bool {
        self.devices.windows(2).any(|w| w[0] != w[1])
    }
}

/// Outcome of one scheduler run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Completed jobs, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Rejected admissions, in arrival order.
    pub rejections: Vec<Rejection>,
    /// Jobs left unrunnable (every fleet device dead), by id.
    pub stranded: Vec<usize>,
    /// The deterministic event log.
    pub log: Vec<String>,
    /// Model time of the last event.
    pub makespan_nanos: u64,
    /// Per-device busy nanoseconds (completed dispatches).
    pub device_busy_nanos: Vec<u64>,
    /// Per-device nanoseconds lost to killed dispatches.
    pub device_wasted_nanos: Vec<u64>,
    /// Per-device liveness at the end of the run.
    pub device_alive: Vec<bool>,
    /// Snapshot of the run's metrics registry.
    pub metrics: MetricsSnapshot,
    /// Completed volumes by job id (only with
    /// [`ServeConfig::keeping_volumes`]).
    pub volumes: Vec<(usize, Volume)>,
}

impl ServeReport {
    /// Busy share of `device` over the makespan, in `[0, 1]`.
    pub fn utilisation(&self, device: usize) -> f64 {
        if self.makespan_nanos == 0 {
            return 0.0;
        }
        self.device_busy_nanos[device] as f64 / self.makespan_nanos as f64
    }

    /// Mean utilisation across the fleet.
    pub fn mean_utilisation(&self) -> f64 {
        if self.device_busy_nanos.is_empty() {
            return 0.0;
        }
        (0..self.device_busy_nanos.len())
            .map(|d| self.utilisation(d))
            .sum::<f64>()
            / self.device_busy_nanos.len() as f64
    }

    /// Latency quantile from the run's histograms: global with
    /// `tenant = None`, per-tenant otherwise.
    pub fn latency_quantile_nanos(&self, q: f64, tenant: Option<usize>) -> Option<u64> {
        match tenant {
            None => histogram_quantile(&self.metrics, "serve.job.latency.nanos", None, q),
            Some(t) => histogram_quantile(&self.metrics, "serve.tenant.latency.nanos", Some(t), q),
        }
    }

    /// The canonical schedule export: a line-oriented text rendering of
    /// every completion, rejection, device tally, and event-log line.
    /// Two runs of the same seeded workload must produce byte-identical
    /// schedule text — the determinism contract the tests pin.
    pub fn schedule_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("scalefbp-serve schedule v1\n");
        for j in &self.jobs {
            let devices: Vec<String> = j.devices.iter().map(|d| d.to_string()).collect();
            let _ = writeln!(
                out,
                "job {} tenant {} class {} arrival {} start {} finish {} latency {} \
                 devices {} slices {} requeues {} batch {} ws {} crc {:08x}",
                j.id,
                j.tenant,
                j.class,
                j.arrival_nanos,
                j.first_start_nanos,
                j.finish_nanos,
                j.latency_nanos(),
                devices.join(","),
                j.slices,
                j.requeues,
                j.batch_size,
                j.working_set_bytes,
                j.volume_crc
            );
        }
        for r in &self.rejections {
            let _ = writeln!(
                out,
                "reject {} tenant {} arrival {} reason {}",
                r.id, r.tenant, r.arrival_nanos, r.reason
            );
        }
        for id in &self.stranded {
            let _ = writeln!(out, "stranded {id}");
        }
        for d in 0..self.device_busy_nanos.len() {
            let _ = writeln!(
                out,
                "device {d} busy {} wasted {} alive {}",
                self.device_busy_nanos[d], self.device_wasted_nanos[d], self.device_alive[d]
            );
        }
        let _ = writeln!(out, "makespan {}", self.makespan_nanos);
        for line in &self.log {
            let _ = writeln!(out, "event {line}");
        }
        out
    }
}

/// CRC-32 over the volume's f32 bit patterns (little-endian).
fn volume_crc(v: &Volume) -> u32 {
    let mut bytes = Vec::with_capacity(v.data().len() * 4);
    for x in v.data() {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    crc32(&bytes)
}

// ---------------------------------------------------------------------
// Internal engine state.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct JobState {
    spec: JobSpec,
    ws_bytes: u64,
    /// Long jobs: per-slab analytic costs; empty for small jobs.
    task_costs: Vec<TaskCost>,
    enqueue_nanos: u64,
    slabs_done: usize,
    slices_done: usize,
    requeues: usize,
    devices: Vec<usize>,
    first_start: Option<u64>,
    ckpt: Option<StorageEndpoint>,
    ckpt_dir: Option<PathBuf>,
}

impl JobState {
    fn total_slabs(&self) -> usize {
        self.task_costs.len()
    }

    fn slice_slabs(&self) -> usize {
        match self.spec.class {
            JobClass::Small => 0,
            JobClass::Long { slice_slabs, .. } => slice_slabs.max(1),
        }
    }
}

enum WorkKind {
    /// Consecutive small jobs packed into one dispatch.
    Batch(Vec<JobState>),
    /// One slice of a long job: slabs `[from, to)` of its plan. The
    /// state is boxed so a slice dispatch isn't as large as a whole
    /// batch of small-job states.
    Slice {
        job: Box<JobState>,
        from: usize,
        to: usize,
    },
}

struct Running {
    start_nanos: u64,
    finish_nanos: u64,
    /// Pending straggler-detection event: `Some(t)` when the dispatch
    /// runs degraded and the overrun becomes observable at `t` (the
    /// healthy completion time plus margin); cleared once processed.
    detect_nanos: Option<u64>,
    /// The overrun was confirmed: the dispatch outlived its healthy
    /// model estimate, so it is eligible for hedging.
    overrun: bool,
    /// A hedge duplicate has been issued for this dispatch.
    hedged: bool,
    /// This dispatch *is* a hedge duplicate.
    is_hedge: bool,
    kind: WorkKind,
    /// RAII memory reservations on the fleet device.
    _reservations: Vec<DeviceBuffer>,
}

impl Running {
    fn job_ids(&self) -> Vec<usize> {
        match &self.kind {
            WorkKind::Batch(jobs) => jobs.iter().map(|j| j.spec.id).collect(),
            WorkKind::Slice { job, .. } => vec![job.spec.id],
        }
    }
}

struct FleetDevice {
    device: Device,
    alive: bool,
    kill_at: Option<u64>,
    /// Set once a dispatch on this device overran its healthy model
    /// estimate: the device is treated as degraded from then on —
    /// dispatch placement deprioritises it (so requeued checkpoint
    /// slices migrate off) and its small batches become hedgeable.
    detected_slow: bool,
}

struct Tallies {
    submitted: Counter,
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    batches: Counter,
    batch_jobs: Counter,
    preemptions: Counter,
    migrations: Counter,
    requeues: Counter,
    device_kills: Counter,
    corruptions: Counter,
    stragglers: Counter,
    hedges_issued: Counter,
    hedges_won: Counter,
    hedges_wasted: Counter,
    queue_peak: Gauge,
    latency: Histogram,
    wait: Histogram,
}

/// The scheduler. Construct with a config and a metrics registry, then
/// [`run`](Scheduler::run) one workload to completion.
pub struct Scheduler {
    cfg: ServeConfig,
    registry: MetricsRegistry,
}

impl Scheduler {
    /// Creates a scheduler reporting into `registry`.
    pub fn new(cfg: ServeConfig, registry: MetricsRegistry) -> Self {
        Scheduler { cfg, registry }
    }

    /// The registry this scheduler reports into.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Runs `jobs` (any order; sorted by arrival internally) to
    /// completion and returns the report, or the structured error that
    /// stopped the run (a failed reservation, reconstruction, or
    /// checkpoint I/O — see [`ServeError`]).
    pub fn run(&self, jobs: Vec<JobSpec>) -> Result<ServeReport, ServeError> {
        let mut engine = Engine::new(&self.cfg, self.registry.clone());
        engine.run(jobs)
    }
}

struct Engine<'a> {
    cfg: &'a ServeConfig,
    registry: MetricsRegistry,
    devices: Vec<FleetDevice>,
    running: Vec<Option<Running>>,
    queue: Vec<JobState>,
    outstanding_bytes: u64,
    now: u64,
    makespan: u64,
    busy: Vec<u64>,
    wasted: Vec<u64>,
    tallies: Tallies,
    jobs_out: Vec<JobRecord>,
    rejections: Vec<Rejection>,
    volumes: Vec<(usize, Volume)>,
    log: Vec<String>,
    /// Corruption plan entries already applied, as `(job, after_slices)`
    /// pairs. Each planned corruption fires exactly once: after the
    /// wiped job restarts from scratch it passes the same slice count
    /// again, and re-corrupting would loop the job forever.
    corruptions_applied: std::collections::HashSet<(usize, usize)>,
    /// Jobs whose numerics have completed — the hedging dedup set: a
    /// duplicate dispatch arriving second finds its jobs here and is
    /// discarded (its time counts as wasted, never its results twice).
    completed_ids: std::collections::HashSet<usize>,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a ServeConfig, registry: MetricsRegistry) -> Self {
        let devices: Vec<FleetDevice> = (0..cfg.devices)
            .map(|d| FleetDevice {
                device: Device::with_observability(
                    cfg.device.clone(),
                    Arc::new(NoFaults),
                    d,
                    registry.clone(),
                ),
                alive: true,
                kill_at: cfg.faults.kill_time(d),
                detected_slow: false,
            })
            .collect();
        let tallies = Tallies {
            submitted: registry.counter("serve.jobs.submitted"),
            admitted: registry.counter("serve.jobs.admitted"),
            rejected: registry.counter("serve.jobs.rejected"),
            completed: registry.counter("serve.jobs.completed"),
            batches: registry.counter("serve.batches"),
            batch_jobs: registry.counter("serve.batch.jobs"),
            preemptions: registry.counter("serve.preemptions"),
            migrations: registry.counter("serve.migrations"),
            requeues: registry.counter("serve.requeues"),
            device_kills: registry.counter("serve.device.kills"),
            corruptions: registry.counter("serve.checkpoint.corruptions"),
            stragglers: registry.counter("serve.stragglers"),
            hedges_issued: registry.counter("serve.hedges.issued"),
            hedges_won: registry.counter("serve.hedges.won"),
            hedges_wasted: registry.counter("serve.hedges.wasted"),
            queue_peak: registry.gauge("serve.queue.depth.peak"),
            latency: registry.histogram("serve.job.latency.nanos", &LATENCY_BOUNDS_NANOS),
            wait: registry.histogram("serve.queue.wait.nanos", &LATENCY_BOUNDS_NANOS),
        };
        Engine {
            running: (0..cfg.devices).map(|_| None).collect(),
            busy: vec![0; cfg.devices],
            wasted: vec![0; cfg.devices],
            devices,
            cfg,
            registry,
            queue: Vec::new(),
            outstanding_bytes: 0,
            now: 0,
            makespan: 0,
            tallies,
            jobs_out: Vec::new(),
            rejections: Vec::new(),
            volumes: Vec::new(),
            log: Vec::new(),
            corruptions_applied: std::collections::HashSet::new(),
            completed_ids: std::collections::HashSet::new(),
        }
    }

    fn run(&mut self, mut jobs: Vec<JobSpec>) -> Result<ServeReport, ServeError> {
        jobs.sort_by_key(|j| (j.arrival_nanos, j.id));
        let mut arrivals = jobs.into_iter().peekable();

        loop {
            // Next event: the earliest of (a) the next arrival, (b) a
            // running dispatch finishing, (c) a running dispatch's
            // device being killed mid-flight, (d) a straggling dispatch
            // overrunning its healthy model estimate.
            let next_arrival = arrivals.peek().map(|j| j.arrival_nanos);
            let next_device = (0..self.devices.len())
                .filter_map(|d| self.device_event_nanos(d))
                .min();
            let t = match (next_arrival, next_device) {
                (None, None) => break,
                (a, b) => a.into_iter().chain(b).min().unwrap(),
            };
            self.now = t;
            self.makespan = self.makespan.max(t);

            // Device kills and completions first (capacity frees up
            // before same-instant arrivals are admitted), ascending
            // device index; a kill at the same instant as a completion
            // wins — the crash happened before the result was read.
            // Straggler detections come after both: an overrun is only
            // meaningful on a dispatch that is still in flight.
            for d in 0..self.devices.len() {
                if self.running[d].is_some() {
                    let kill = self.pending_kill(d);
                    if kill == Some(t) {
                        self.kill_device(d, t);
                    } else if self.running[d].as_ref().unwrap().finish_nanos == t {
                        self.complete(d)?;
                    } else if self.running[d].as_ref().unwrap().detect_nanos == Some(t) {
                        self.detect_straggler(d, t);
                    }
                }
            }
            // Idle devices whose kill time has passed die too.
            for d in 0..self.devices.len() {
                if self.devices[d].alive && self.devices[d].kill_at.is_some_and(|k| k <= t) {
                    let k = self.devices[d].kill_at.unwrap();
                    self.mark_dead(d, k);
                }
            }
            while arrivals.peek().is_some_and(|j| j.arrival_nanos == t) {
                let job = arrivals.next().unwrap();
                self.admit(job);
            }
            self.dispatch()?;
        }

        let stranded: Vec<usize> = self.queue.iter().map(|j| j.spec.id).collect();
        for id in &stranded {
            self.push_log(format!("t={} job {id} stranded: no device alive", self.now));
        }

        Ok(ServeReport {
            jobs: std::mem::take(&mut self.jobs_out),
            rejections: std::mem::take(&mut self.rejections),
            stranded,
            log: std::mem::take(&mut self.log),
            makespan_nanos: self.makespan,
            device_busy_nanos: self.busy.clone(),
            device_wasted_nanos: self.wasted.clone(),
            device_alive: self.devices.iter().map(|d| d.alive).collect(),
            metrics: self.registry.snapshot(),
            volumes: std::mem::take(&mut self.volumes),
        })
    }

    /// The model time of the next event on device `d`, if it is busy:
    /// its dispatch completion or pending straggler detection, cut
    /// short by a pending kill.
    fn device_event_nanos(&self, d: usize) -> Option<u64> {
        let r = self.running[d].as_ref()?;
        let next = r
            .detect_nanos
            .map_or(r.finish_nanos, |t| t.min(r.finish_nanos));
        Some(match self.pending_kill(d) {
            Some(k) if k <= next => k,
            _ => next,
        })
    }

    fn pending_kill(&self, d: usize) -> Option<u64> {
        if !self.devices[d].alive {
            return None;
        }
        self.devices[d].kill_at
    }

    fn push_log(&mut self, line: String) {
        self.log.push(line);
    }

    // -- admission ----------------------------------------------------

    fn admit(&mut self, spec: JobSpec) {
        self.tallies.submitted.inc();
        let planned = match spec.class {
            JobClass::Small => {
                let g = &spec.geom;
                let ws = (g.projection_bytes() + g.volume_bytes()) as u64
                    + g.np as u64 * MATS_BYTES_PER_PROJ;
                if ws > self.cfg.device.memory_bytes {
                    Err(RejectReason::Unschedulable(format!(
                        "working set {ws} exceeds device memory {}",
                        self.cfg.device.memory_bytes
                    )))
                } else {
                    Ok((Vec::new(), ws))
                }
            }
            JobClass::Long { .. } => long_plan(&job_config(self.cfg, &spec))
                .map_err(|e| RejectReason::Unschedulable(e.to_string())),
        };
        let (task_costs, ws) = match planned {
            Ok(p) => p,
            Err(reason) => return self.reject(spec, reason),
        };
        let available = self
            .cfg
            .budget_bytes()
            .saturating_sub(self.outstanding_bytes);
        if ws > available {
            return self.reject(
                spec,
                RejectReason::MemoryBudget {
                    requested: ws,
                    available,
                },
            );
        }
        self.outstanding_bytes += ws;
        self.tallies.admitted.inc();
        self.push_log(format!(
            "t={} job {} tenant {} class {} admitted ws={ws}",
            self.now,
            spec.id,
            spec.tenant,
            spec.class.name()
        ));
        self.enqueue(JobState {
            spec,
            ws_bytes: ws,
            task_costs,
            enqueue_nanos: self.now,
            slabs_done: 0,
            slices_done: 0,
            requeues: 0,
            devices: Vec::new(),
            first_start: None,
            ckpt: None,
            ckpt_dir: None,
        });
    }

    fn reject(&mut self, spec: JobSpec, reason: RejectReason) {
        self.tallies.rejected.inc();
        self.registry
            .rank_counter("serve.tenant.jobs.rejected", spec.tenant)
            .inc();
        self.push_log(format!(
            "t={} job {} tenant {} rejected: {reason}",
            self.now, spec.id, spec.tenant
        ));
        self.rejections.push(Rejection {
            id: spec.id,
            tenant: spec.tenant,
            arrival_nanos: spec.arrival_nanos,
            reason,
        });
    }

    fn enqueue(&mut self, job: JobState) {
        self.queue.push(job);
        self.tallies.queue_peak.raise(self.queue.len() as f64);
    }

    // -- dispatch -----------------------------------------------------

    fn device_ready(&self, d: usize) -> bool {
        self.devices[d].alive
            && self.running[d].is_none()
            && self.devices[d].kill_at.is_none_or(|k| self.now < k)
    }

    /// The next device to place work on: healthy devices first, so
    /// requeued checkpoint slices and fresh batches migrate *off* a
    /// detected-slow device whenever a full-rate one is free.
    fn idle_device(&self) -> Option<usize> {
        (0..self.devices.len())
            .find(|&d| self.device_ready(d) && !self.devices[d].detected_slow)
            .or_else(|| (0..self.devices.len()).find(|&d| self.device_ready(d)))
    }

    fn dispatch(&mut self) -> Result<(), ServeError> {
        while let Some(d) = self.idle_device() {
            if self.queue.is_empty() {
                break;
            }
            match self.queue[0].spec.class {
                JobClass::Small => self.start_batch(d)?,
                JobClass::Long { .. } => self.start_slice(d)?,
            }
        }
        if self.cfg.hedging {
            self.issue_hedges();
        }
        Ok(())
    }

    /// Hedged dispatch: a small-job batch stuck on a detected-slow
    /// device — its overrun confirmed and at least one of its jobs past
    /// the aging limit — is duplicated onto an idle healthy device.
    /// First completion wins; the loser is deduplicated by job id and
    /// its span counted as wasted. Long-job slices are never hedged:
    /// two dispatches of the same slice would race on the one
    /// checkpoint store.
    fn issue_hedges(&mut self) {
        loop {
            let Some(target) = (0..self.devices.len())
                .find(|&d| self.device_ready(d) && !self.devices[d].detected_slow)
            else {
                return;
            };
            let aged =
                |j: &JobState| self.now.saturating_sub(j.enqueue_nanos) > self.cfg.aging_nanos;
            let Some(src) = (0..self.devices.len()).find(|&d| {
                self.devices[d].detected_slow
                    && self.running[d].as_ref().is_some_and(|r| {
                        r.overrun
                            && !r.hedged
                            && !r.is_hedge
                            && match &r.kind {
                                WorkKind::Batch(jobs) => jobs.iter().any(aged),
                                WorkKind::Slice { .. } => false,
                            }
                    })
            }) else {
                return;
            };
            let mut hedge_jobs: Vec<JobState> = match &self.running[src].as_ref().unwrap().kind {
                WorkKind::Batch(jobs) => jobs.clone(),
                WorkKind::Slice { .. } => return,
            };
            let mut reservations = Vec::with_capacity(hedge_jobs.len());
            for job in &hedge_jobs {
                match self.devices[target].device.alloc(job.ws_bytes) {
                    Ok(buf) => reservations.push(buf),
                    // Hedging is opportunistic: a target without room
                    // simply declines, the original keeps running.
                    Err(_) => return,
                }
            }
            let mut secs = self.cfg.dispatch_overhead_secs;
            for job in &mut hedge_jobs {
                secs += small_secs(&self.cfg.device, &job.spec.geom);
                job.devices.push(target);
            }
            let factor = self.cfg.faults.slow_factor_at(target, self.now);
            let finish = self.now + nanos(secs * factor as f64);
            let detect = (factor > 1)
                .then(|| self.now + nanos(secs) * STRAGGLER_MARGIN_NUM / STRAGGLER_MARGIN_DEN);
            self.running[src].as_mut().unwrap().hedged = true;
            self.tallies.hedges_issued.inc();
            let ids: Vec<String> = hedge_jobs.iter().map(|j| j.spec.id.to_string()).collect();
            self.push_log(format!(
                "t={} hedge dev {src} -> dev {target} batch [{}] finish {finish}",
                self.now,
                ids.join(",")
            ));
            self.running[target] = Some(Running {
                start_nanos: self.now,
                finish_nanos: finish,
                detect_nanos: detect,
                overrun: false,
                hedged: true,
                is_hedge: true,
                kind: WorkKind::Batch(hedge_jobs),
                _reservations: reservations,
            });
        }
    }

    /// Gathers a batch for device `d`: consecutive queued small jobs
    /// under the device's capacity, up to `max_batch`. Gathering may
    /// pass over a job (a long job, or a small one that no longer
    /// fits) only while that job's wait is within the aging limit;
    /// an aged job is a barrier — nothing younger may overtake it.
    fn start_batch(&mut self, d: usize) -> Result<(), ServeError> {
        let mut picked: Vec<usize> = Vec::new();
        let mut free = self.cfg.device.memory_bytes;
        for (qi, job) in self.queue.iter().enumerate() {
            if picked.len() >= self.cfg.max_batch {
                break;
            }
            if job.spec.class == JobClass::Small && job.ws_bytes <= free {
                free -= job.ws_bytes;
                picked.push(qi);
            } else if self.now.saturating_sub(job.enqueue_nanos) > self.cfg.aging_nanos {
                break;
            }
        }
        debug_assert!(!picked.is_empty(), "queue head must be dispatchable");

        let mut batch: Vec<JobState> = Vec::with_capacity(picked.len());
        for qi in picked.into_iter().rev() {
            batch.push(self.queue.remove(qi));
        }
        batch.reverse();

        let mut reservations = Vec::with_capacity(batch.len());
        let mut secs = self.cfg.dispatch_overhead_secs;
        for job in &mut batch {
            let buf = self.devices[d].device.alloc(job.ws_bytes).map_err(|e| {
                ServeError::Reservation {
                    device: d,
                    job: job.spec.id,
                    detail: e.to_string(),
                }
            })?;
            reservations.push(buf);
            secs += small_secs(&self.cfg.device, &job.spec.geom);
            job.first_start.get_or_insert(self.now);
            job.devices.push(d);
        }
        self.tallies.batches.inc();
        self.tallies.batch_jobs.add(batch.len() as u64);
        let (finish, detect) = self.dispatch_window(d, secs);
        let ids: Vec<String> = batch.iter().map(|j| j.spec.id.to_string()).collect();
        self.push_log(format!(
            "t={} dispatch dev {d} batch [{}] finish {finish}",
            self.now,
            ids.join(",")
        ));
        self.running[d] = Some(Running {
            start_nanos: self.now,
            finish_nanos: finish,
            detect_nanos: detect,
            overrun: false,
            hedged: false,
            is_hedge: false,
            kind: WorkKind::Batch(batch),
            _reservations: reservations,
        });
        Ok(())
    }

    /// The completion and straggler-detection times of a dispatch of
    /// healthy duration `secs` started now on device `d`. Under a
    /// fault-plan slowdown the dispatch takes `factor ×` its healthy
    /// duration, and the overrun becomes observable at the healthy
    /// finish time plus margin; at factor 1 the duration is bit-exact
    /// (`secs * 1.0` is the identity) and no detection event exists, so
    /// a fault-free run's schedule is byte-identical to before.
    fn dispatch_window(&self, d: usize, secs: f64) -> (u64, Option<u64>) {
        let factor = self.cfg.faults.slow_factor_at(d, self.now);
        let finish = self.now + nanos(secs * factor as f64);
        let detect = (factor > 1)
            .then(|| self.now + nanos(secs) * STRAGGLER_MARGIN_NUM / STRAGGLER_MARGIN_DEN);
        (finish, detect)
    }

    /// Dispatches the next slice of the long job at the queue head.
    fn start_slice(&mut self, d: usize) -> Result<(), ServeError> {
        let mut job = self.queue.remove(0);
        let from = job.slabs_done;
        let to = (from + job.slice_slabs()).min(job.total_slabs());
        let secs = self.cfg.dispatch_overhead_secs
            + slice_secs(&self.cfg.device, &job.task_costs, from, to);
        let reservation =
            self.devices[d]
                .device
                .alloc(job.ws_bytes)
                .map_err(|e| ServeError::Reservation {
                    device: d,
                    job: job.spec.id,
                    detail: e.to_string(),
                })?;
        if let Some(&prev) = job.devices.last() {
            if prev != d {
                self.tallies.migrations.inc();
                self.push_log(format!(
                    "t={} job {} migrated dev {prev} -> dev {d} (resume from slab {from})",
                    self.now, job.spec.id
                ));
            }
        }
        job.first_start.get_or_insert(self.now);
        job.devices.push(d);
        let (finish, detect) = self.dispatch_window(d, secs);
        self.push_log(format!(
            "t={} dispatch dev {d} job {} slice slabs {from}..{to} finish {finish}",
            self.now, job.spec.id
        ));
        self.running[d] = Some(Running {
            start_nanos: self.now,
            finish_nanos: finish,
            detect_nanos: detect,
            overrun: false,
            hedged: false,
            is_hedge: false,
            kind: WorkKind::Slice {
                job: Box::new(job),
                from,
                to,
            },
            _reservations: vec![reservation],
        });
        Ok(())
    }

    // -- events -------------------------------------------------------

    /// A dispatch on device `d` has outlived its healthy model estimate
    /// by the detection margin: mark the dispatch overrun (making it
    /// hedgeable) and the device detected-slow (deprioritising it for
    /// future placement).
    fn detect_straggler(&mut self, d: usize, t: u64) {
        if let Some(r) = self.running[d].as_mut() {
            r.detect_nanos = None;
            r.overrun = true;
        }
        if !self.devices[d].detected_slow {
            self.devices[d].detected_slow = true;
            self.tallies.stragglers.inc();
        }
        self.push_log(format!(
            "t={t} device {d} straggler detected (dispatch overran healthy estimate)"
        ));
    }

    fn mark_dead(&mut self, d: usize, at: u64) {
        self.devices[d].alive = false;
        self.tallies.device_kills.inc();
        self.push_log(format!("t={at} device {d} killed"));
    }

    /// An injected kill hits device `d` at time `t` while a dispatch is
    /// in flight: the dispatch is lost (nothing was committed — slices
    /// commit only at completion) and every job on it is requeued.
    fn kill_device(&mut self, d: usize, t: u64) {
        let r = self.running[d].take().expect("kill of a busy device");
        self.wasted[d] += t - r.start_nanos;
        self.registry
            .rank_counter("serve.device.wasted.nanos", d)
            .add(t - r.start_nanos);
        self.mark_dead(d, t);
        let jobs = match r.kind {
            WorkKind::Batch(jobs) => jobs,
            WorkKind::Slice { job, .. } => vec![*job],
        };
        for mut job in jobs {
            let id = job.spec.id;
            // A job covered by a hedge twin — already completed, or
            // still running as a duplicate dispatch elsewhere — is not
            // requeued: the twin delivers (or delivered) its result.
            if self.completed_ids.contains(&id) {
                self.push_log(format!(
                    "t={t} job {id} duplicate lost with device {d} (already complete)"
                ));
                continue;
            }
            let twin_running = (0..self.running.len()).any(|o| {
                o != d
                    && self.running[o]
                        .as_ref()
                        .is_some_and(|r| r.job_ids().contains(&id))
            });
            if twin_running {
                self.push_log(format!(
                    "t={t} job {id} not requeued (twin dispatch still in flight)"
                ));
                continue;
            }
            job.requeues += 1;
            job.enqueue_nanos = t;
            self.tallies.requeues.inc();
            self.push_log(format!(
                "t={t} job {} requeued (device {d} died; resume from slab {})",
                job.spec.id, job.slabs_done
            ));
            self.enqueue(job);
        }
    }

    /// A dispatch completes: now the real numerics run. Deferring the
    /// computation to the completion event keeps killed dispatches
    /// side-effect-free, so the checkpoint state on disk always equals
    /// what the model says was durably committed.
    fn complete(&mut self, d: usize) -> Result<(), ServeError> {
        let r = self.running[d]
            .take()
            .ok_or_else(|| ServeError::Scheduling(format!("completion on idle device {d}")))?;
        let span = r.finish_nanos - r.start_nanos;
        match r.kind {
            WorkKind::Batch(jobs) => {
                let batch_size = jobs.len();
                // Hedging dedup: jobs already delivered by a twin
                // dispatch are dropped here — first completion won.
                let fresh: Vec<JobState> = jobs
                    .into_iter()
                    .filter(|j| !self.completed_ids.contains(&j.spec.id))
                    .collect();
                if fresh.is_empty() {
                    self.wasted[d] += span;
                    self.registry
                        .rank_counter("serve.device.wasted.nanos", d)
                        .add(span);
                    self.tallies.hedges_wasted.inc();
                    self.push_log(format!(
                        "t={} dev {d} duplicate batch discarded (twin won)",
                        self.now
                    ));
                    return Ok(());
                }
                self.busy[d] += span;
                self.registry
                    .rank_counter("serve.device.busy.nanos", d)
                    .add(span);
                if r.is_hedge {
                    self.tallies.hedges_won.inc();
                    self.push_log(format!("t={} dev {d} hedge won", self.now));
                }
                for job in fresh {
                    self.completed_ids.insert(job.spec.id);
                    let cfg_job = job_config(self.cfg, &job.spec);
                    let volume = fdk_reconstruct_configured(&cfg_job, &job.spec.projections)
                        .map_err(|e| ServeError::Reconstruction {
                            job: job.spec.id,
                            detail: e.to_string(),
                        })?;
                    self.mirror_small(d, &job.spec.geom);
                    self.finish_job(job, d, batch_size, 1, volume);
                }
            }
            WorkKind::Slice { job, from, to } => {
                self.busy[d] += span;
                self.registry
                    .rank_counter("serve.device.busy.nanos", d)
                    .add(span);
                self.complete_slice(d, *job, from, to)?;
            }
        }
        Ok(())
    }

    /// Mirrors a small job's traffic onto the fleet device so the
    /// per-device `gpu.*` metrics reflect scheduled work.
    fn mirror_small(&self, d: usize, g: &CbctGeometry) {
        let (h2d, updates, d2h) = small_cost(g);
        let dev = &self.devices[d].device;
        let _ = dev.h2d(h2d);
        let _ = dev.launch_backprojection(updates);
        let _ = dev.d2h(d2h);
    }

    fn complete_slice(
        &mut self,
        d: usize,
        mut job: JobState,
        from: usize,
        to: usize,
    ) -> Result<(), ServeError> {
        let is_final = to == job.total_slabs();
        self.ensure_ckpt(&mut job)?;
        let endpoint = job.ckpt.clone().ok_or_else(|| {
            ServeError::Scheduling(format!("job {} has no checkpoint endpoint", job.spec.id))
        })?;
        let cfg_job = job_config(self.cfg, &job.spec);
        let rec = OutOfCoreReconstructor::new(cfg_job).map_err(|e| ServeError::Reconstruction {
            job: job.spec.id,
            detail: e.to_string(),
        })?;
        let mut spec = scalefbp::CheckpointSpec::new("ck", 1);
        if from > 0 {
            spec = spec.resuming();
        }
        if !is_final {
            spec = spec.killing_after(to - from);
        }

        // Mirror the slice's modelled traffic onto the fleet device.
        {
            let dev = &self.devices[d].device;
            let mut h2d = 0u64;
            let mut updates = 0u64;
            let mut d2h = 0u64;
            for (i, c) in job.task_costs[from..to].iter().enumerate() {
                h2d += if i == 0 {
                    c.full_rows_bytes
                } else {
                    c.new_rows_bytes
                };
                updates += c.updates;
                d2h += c.slab_bytes;
            }
            if h2d > 0 {
                let _ = dev.h2d(h2d);
            }
            let _ = dev.launch_backprojection(updates);
            let _ = dev.d2h(d2h);
        }

        match rec.reconstruct_checkpointed(&job.spec.projections, &endpoint, &spec) {
            Err(ReconstructionError::Interrupted { completed_slabs }) if !is_final => {
                debug_assert_eq!(completed_slabs, to - from);
                job.slabs_done = to;
                job.slices_done += 1;
                self.tallies.preemptions.inc();
                self.push_log(format!(
                    "t={} job {} preempted after slab {to}/{} (slice {} done on dev {d})",
                    self.now,
                    job.spec.id,
                    job.total_slabs(),
                    job.slices_done
                ));
                self.maybe_corrupt(&mut job)?;
                job.enqueue_nanos = self.now;
                self.enqueue(job);
            }
            Ok((volume, _report)) if is_final => {
                job.slabs_done = to;
                job.slices_done += 1;
                let slices = job.slices_done;
                self.completed_ids.insert(job.spec.id);
                self.finish_job(job, d, 1, slices, volume);
            }
            Err(e) => {
                // A corrupted (or otherwise unreadable) checkpoint was
                // detected by the CRC seal on resume. Nothing of this
                // slice committed; wipe the store and restart the job
                // from scratch — the recomputed volume is bitwise
                // identical, only later.
                self.tallies.corruptions.inc();
                self.tallies.requeues.inc();
                self.push_log(format!(
                    "t={} job {} checkpoint unreadable on resume ({}); restarting from scratch",
                    self.now,
                    job.spec.id,
                    short_error(&e)
                ));
                if let Some(dir) = &job.ckpt_dir {
                    let _ = std::fs::remove_dir_all(dir);
                    std::fs::create_dir_all(dir).map_err(|e| ServeError::CheckpointIo {
                        job: job.spec.id,
                        detail: format!("recreate {}: {e}", dir.display()),
                    })?;
                }
                job.ckpt = job
                    .ckpt_dir
                    .clone()
                    .map(|dir| StorageEndpoint::local_nvme(Some(dir)));
                job.slabs_done = 0;
                job.slices_done = 0;
                job.requeues += 1;
                job.enqueue_nanos = self.now;
                self.enqueue(job);
            }
            Ok(_) => {
                // (Interrupted on a final slice cannot happen: no kill
                // switch is installed there.)
                return Err(ServeError::Scheduling(format!(
                    "non-final slice of job {} completed without interrupting",
                    job.spec.id
                )));
            }
        }
        Ok(())
    }

    fn ensure_ckpt(&mut self, job: &mut JobState) -> Result<(), ServeError> {
        if job.ckpt.is_some() {
            return Ok(());
        }
        let dir = self
            .cfg
            .checkpoint_root
            .join(format!("job-{:04}", job.spec.id));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::CheckpointIo {
            job: job.spec.id,
            detail: format!("create {}: {e}", dir.display()),
        })?;
        job.ckpt = Some(StorageEndpoint::local_nvme(Some(dir.clone())));
        job.ckpt_dir = Some(dir);
        Ok(())
    }

    /// Applies a planned corruption fault: flip one byte of the first
    /// committed slab file after the job's `slices_done`-th slice.
    fn maybe_corrupt(&mut self, job: &mut JobState) -> Result<(), ServeError> {
        if !self.cfg.faults.corrupts(job.spec.id, job.slices_done)
            || !self
                .corruptions_applied
                .insert((job.spec.id, job.slices_done))
        {
            return Ok(());
        }
        let Some(dir) = &job.ckpt_dir else {
            return Ok(());
        };
        let mut slabs: Vec<PathBuf> = Vec::new();
        collect_slab_files(dir, &mut slabs);
        slabs.sort();
        let Some(path) = slabs.first() else {
            return Ok(());
        };
        let mut bytes = std::fs::read(path).map_err(|e| ServeError::CheckpointIo {
            job: job.spec.id,
            detail: format!("read {}: {e}", path.display()),
        })?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(path, &bytes).map_err(|e| ServeError::CheckpointIo {
            job: job.spec.id,
            detail: format!("write {}: {e}", path.display()),
        })?;
        self.push_log(format!(
            "t={} job {} fault: slab file corrupted after slice {}",
            self.now, job.spec.id, job.slices_done
        ));
        Ok(())
    }

    fn finish_job(
        &mut self,
        job: JobState,
        _device: usize,
        batch_size: usize,
        slices: usize,
        volume: Volume,
    ) {
        let finish = self.now;
        let arrival = job.spec.arrival_nanos;
        let first_start = job.first_start.expect("completed job was dispatched");
        let latency = finish - arrival;
        self.tallies.completed.inc();
        self.tallies.latency.observe(latency);
        self.tallies.wait.observe(first_start - arrival);
        self.registry
            .rank_counter("serve.tenant.jobs.completed", job.spec.tenant)
            .inc();
        self.registry
            .rank_histogram(
                "serve.tenant.latency.nanos",
                job.spec.tenant,
                &LATENCY_BOUNDS_NANOS,
            )
            .observe(latency);
        self.outstanding_bytes -= job.ws_bytes;
        let crc = volume_crc(&volume);
        self.push_log(format!(
            "t={finish} job {} tenant {} done latency {latency} crc {crc:08x}",
            job.spec.id, job.spec.tenant
        ));
        self.jobs_out.push(JobRecord {
            id: job.spec.id,
            tenant: job.spec.tenant,
            class: job.spec.class.name(),
            arrival_nanos: arrival,
            first_start_nanos: first_start,
            finish_nanos: finish,
            devices: job.devices,
            slices,
            requeues: job.requeues,
            batch_size,
            working_set_bytes: job.ws_bytes,
            volume_crc: crc,
        });
        if self.cfg.keep_volumes {
            self.volumes.push((job.spec.id, volume));
        }
    }
}

fn short_error(e: &ReconstructionError) -> &'static str {
    match e {
        ReconstructionError::Checkpoint(_) => "checkpoint error",
        _ => "reconstruction error",
    }
}

fn collect_slab_files(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_slab_files(&path, out);
        } else if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("slab_") && n.ends_with(".bin"))
        {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate, scan_geometry, WorkloadSpec};

    fn scratch(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("scalefbp-serve-ut-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_config(tag: &str) -> ServeConfig {
        ServeConfig::new(2, DeviceSpec::tiny(300_000), scratch(tag))
    }

    #[test]
    fn small_workload_completes_with_bounded_utilisation() {
        let cfg = tiny_config("smoke");
        let jobs = generate(&WorkloadSpec::new(3, 2, 8, 500.0).small_only());
        let report = Scheduler::new(cfg, MetricsRegistry::new())
            .run(jobs)
            .unwrap();
        assert_eq!(report.jobs.len(), 8);
        assert!(report.rejections.is_empty() && report.stranded.is_empty());
        for d in 0..2 {
            let u = report.utilisation(d);
            assert!((0.0..=1.0).contains(&u), "utilisation {u} out of range");
        }
        assert!(report.makespan_nanos > 0);
        assert_eq!(
            report.metrics.counter("serve.jobs.completed", None),
            Some(8)
        );
    }

    #[test]
    fn slice_cost_model_matches_executed_report() {
        // The analytic slice duration must mirror the out-of-core
        // loop's modelled seconds exactly (same spec arithmetic).
        let g = scan_geometry(16);
        let cfg_job = FdkConfig::new(g.clone())
            .with_device(DeviceSpec::tiny(300_000))
            .with_nc(6);
        let (costs, _) = long_plan(&cfg_job).unwrap();
        let rec = OutOfCoreReconstructor::new(cfg_job.clone()).unwrap();
        let p = generate(&WorkloadSpec::new(1, 1, 5, 100.0))
            .into_iter()
            .find(|j| matches!(j.class, JobClass::Long { .. }))
            .unwrap()
            .projections;
        let (_, report) = rec.reconstruct(&p).unwrap();
        let actual: f64 = report
            .batches
            .iter()
            .map(|b| b.h2d_secs + b.bp_secs + b.d2h_secs)
            .sum();
        let analytic = slice_secs(&cfg_job.device, &costs, 0, costs.len());
        assert!(
            (actual - analytic).abs() <= 1e-12 * actual.max(1.0),
            "analytic {analytic} vs executed {actual}"
        );
    }

    #[test]
    fn job_service_secs_is_positive_and_overhead_sensitive() {
        let cfg = tiny_config("svc");
        let jobs = generate(&WorkloadSpec::new(5, 1, 5, 100.0));
        for job in &jobs {
            let base = job_service_secs(&cfg, job);
            assert!(base > 0.0);
            let mut costly = cfg.clone();
            costly.dispatch_overhead_secs *= 2.0;
            assert!(job_service_secs(&costly, job) > base);
        }
    }
}
