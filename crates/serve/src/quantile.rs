//! Quantile estimation over the fixed-bucket `obs` histograms.
//!
//! The scheduler records latencies into integer-nanosecond histograms
//! with power-of-two bounds; a quantile is reported as the upper bound
//! of the bucket containing it. That is coarse but exactly mergeable
//! and deterministic — the properties the serving metrics contract
//! requires (see `docs/serving.md`).

use scalefbp_obs::{MetricKey, MetricValue, MetricsSnapshot};

/// Latency/wait histogram bounds: 1 µs · 2^k for k = 0..31, i.e. from
/// one microsecond to ~2147 simulated seconds.
pub const LATENCY_BOUNDS_NANOS: [u64; 32] = {
    let mut b = [0u64; 32];
    let mut k = 0;
    while k < 32 {
        b[k] = 1_000u64 << k;
        k += 1;
    }
    b
};

/// The `q`-quantile (0 < q ≤ 1) of a fixed-bucket histogram metric, as
/// the upper bound of the bucket holding the quantile observation.
/// Observations above the last bound report twice the last bound.
/// Returns `None` if the metric is missing, not a histogram, or empty.
pub fn histogram_quantile(
    snapshot: &MetricsSnapshot,
    name: &str,
    rank: Option<usize>,
    q: f64,
) -> Option<u64> {
    let value = snapshot.get(&MetricKey::new(name, rank))?;
    let MetricValue::Histogram {
        bounds,
        buckets,
        count,
        ..
    } = value
    else {
        return None;
    };
    if *count == 0 {
        return None;
    }
    // Rank of the quantile observation, 1-based, clamped into range.
    let target = ((q * *count as f64).ceil() as u64).clamp(1, *count);
    let mut seen = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        seen = seen.saturating_add(*n);
        if seen >= target {
            return Some(match bounds.get(i) {
                Some(b) => *b,
                // Overflow bucket: everything above the last bound.
                None => bounds.last().map(|b| b.saturating_mul(2)).unwrap_or(0),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_obs::MetricsRegistry;

    #[test]
    fn bounds_are_strictly_increasing_powers_of_two() {
        assert_eq!(LATENCY_BOUNDS_NANOS[0], 1_000);
        assert!(LATENCY_BOUNDS_NANOS.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.lat", &LATENCY_BOUNDS_NANOS);
        // 99 fast observations, one slow one.
        for _ in 0..99 {
            h.observe(1_500); // second bucket (bound 2_000)
        }
        h.observe(3_000_000); // bucket bound 1000<<12 = 4_096_000
        let snap = reg.snapshot();
        assert_eq!(histogram_quantile(&snap, "t.lat", None, 0.50), Some(2_000));
        assert_eq!(histogram_quantile(&snap, "t.lat", None, 0.99), Some(2_000));
        assert_eq!(
            histogram_quantile(&snap, "t.lat", None, 1.0),
            Some(4_096_000)
        );
    }

    #[test]
    fn missing_or_empty_metric_yields_none() {
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot();
        assert_eq!(histogram_quantile(&snap, "nope", None, 0.5), None);
        reg.histogram("empty", &LATENCY_BOUNDS_NANOS);
        let snap = reg.snapshot();
        assert_eq!(histogram_quantile(&snap, "empty", None, 0.5), None);
    }
}
