//! Reconstruction-as-a-service: a deterministic multi-tenant job
//! scheduler over the simulated GPU fleet.
//!
//! This crate turns the one-shot reconstruction pipeline into a
//! long-running service model: many tenants submit scan jobs, the
//! scheduler admits them against a global memory budget, packs small
//! in-core jobs into batched device dispatches, time-slices long
//! out-of-core jobs through the [`scalefbp-ckpt`](scalefbp_ckpt)
//! checkpoint store (so a preempted job can migrate between devices),
//! and survives injected device kills and checkpoint corruption by
//! requeuing and resuming from the last durable slab.
//!
//! Everything runs in integer model time derived from the
//! [`DeviceSpec`](scalefbp_gpusim::DeviceSpec) cost model — no wall
//! clock reaches any exported number — so a seeded workload replays to
//! byte-identical schedules, logs, and metric exports while every
//! job's volume is computed for real and stays bitwise identical to a
//! standalone run. See `docs/serving.md` for the full model.

pub mod fleetfaults;
pub mod job;
pub mod loadgen;
pub mod quantile;
pub mod scheduler;

pub use fleetfaults::{CorruptSlab, DeviceKill, DeviceSlow, FleetFaultPlan};
pub use job::{JobClass, JobSpec, RejectReason};
pub use loadgen::{generate, scan_geometry, WorkloadSpec};
pub use quantile::{histogram_quantile, LATENCY_BOUNDS_NANOS};
pub use scheduler::{
    job_config, job_service_secs, JobRecord, Rejection, Scheduler, ServeConfig, ServeError,
    ServeReport,
};
