//! Seeded fault plans against the *fleet*: permanent device kills and
//! checkpoint-slab corruption.
//!
//! These complement the per-rank [`scalefbp_faults::FaultPlan`] used by
//! the distributed drivers: a fleet fault removes a whole device from
//! the scheduler (every job running there is requeued; long jobs resume
//! from their last durable slab on another device), and a corruption
//! fault flips a byte inside a committed slab file so the CRC seal must
//! catch it on the next resume.
//!
//! Plans are pure data generated from a seed, so a run under a plan is
//! exactly replayable — the same determinism contract as `FaultPlan`.

/// Permanently kills one device at an absolute model time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceKill {
    /// Fleet device index.
    pub device: usize,
    /// Model-time nanoseconds at which the device dies.
    pub at_nanos: u64,
}

/// Flips one byte of a committed checkpoint slab of `job` right after
/// its `after_slices`-th completed slice (1-based). The corruption is
/// detected by the CRC seal on the next resume; the scheduler then
/// restarts the job from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptSlab {
    /// Target job id.
    pub job: usize,
    /// Completed-slice count (1-based) after which the flip happens.
    pub after_slices: usize,
}

/// A deterministic schedule of fleet-level faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetFaultPlan {
    /// Device kills, any order; only the earliest kill per device
    /// matters (death is permanent).
    pub kills: Vec<DeviceKill>,
    /// Checkpoint corruptions.
    pub corruptions: Vec<CorruptSlab>,
}

impl FleetFaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// A seeded plan that kills roughly half the fleet (never the whole
    /// fleet — at least one device always survives so every requeued
    /// job can finish) at times spread over the middle of `horizon_nanos`.
    pub fn generate(seed: u64, devices: usize, horizon_nanos: u64) -> Self {
        assert!(devices >= 1, "fleet must have at least one device");
        let victims = devices / 2; // devices=1 → no kills
        let mut state = seed ^ 0x5EED_F1EE_7C0F_FEE5;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut kills = Vec::with_capacity(victims);
        let mut used = Vec::new();
        while kills.len() < victims {
            let device = (next() >> 33) as usize % devices;
            if used.contains(&device) {
                continue;
            }
            used.push(device);
            // Somewhere in the middle half of the horizon, so work is
            // both in flight before the kill and still pending after.
            let span = (horizon_nanos / 2).max(1);
            let at_nanos = horizon_nanos / 4 + (next() >> 33) % span;
            kills.push(DeviceKill { device, at_nanos });
        }
        kills.sort_by_key(|k| (k.at_nanos, k.device));
        FleetFaultPlan {
            kills,
            corruptions: Vec::new(),
        }
    }

    /// Adds a checkpoint-corruption event.
    pub fn with_corruption(mut self, job: usize, after_slices: usize) -> Self {
        self.corruptions.push(CorruptSlab { job, after_slices });
        self
    }

    /// The (earliest) time at which `device` dies, if any.
    pub fn kill_time(&self, device: usize) -> Option<u64> {
        self.kills
            .iter()
            .filter(|k| k.device == device)
            .map(|k| k.at_nanos)
            .min()
    }

    /// Whether `job`'s checkpoint is corrupted after its
    /// `completed_slices`-th slice.
    pub fn corrupts(&self, job: usize, completed_slices: usize) -> bool {
        self.corruptions
            .iter()
            .any(|c| c.job == job && c.after_slices == completed_slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_spares_a_device() {
        let a = FleetFaultPlan::generate(7, 4, 1_000_000);
        let b = FleetFaultPlan::generate(7, 4, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.kills.len(), 2);
        let victims: Vec<usize> = a.kills.iter().map(|k| k.device).collect();
        assert!(victims.iter().all(|&d| d < 4));
        assert!((0..4).any(|d| !victims.contains(&d)));
        for k in &a.kills {
            assert!(k.at_nanos >= 250_000 && k.at_nanos < 750_000);
        }
    }

    #[test]
    fn single_device_fleet_is_never_killed() {
        let plan = FleetFaultPlan::generate(3, 1, 1_000);
        assert!(plan.kills.is_empty());
    }

    #[test]
    fn kill_time_picks_earliest() {
        let plan = FleetFaultPlan {
            kills: vec![
                DeviceKill {
                    device: 1,
                    at_nanos: 500,
                },
                DeviceKill {
                    device: 1,
                    at_nanos: 100,
                },
            ],
            corruptions: Vec::new(),
        };
        assert_eq!(plan.kill_time(1), Some(100));
        assert_eq!(plan.kill_time(0), None);
    }
}
