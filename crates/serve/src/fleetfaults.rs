//! Seeded fault plans against the *fleet*: permanent device kills and
//! checkpoint-slab corruption.
//!
//! These complement the per-rank [`scalefbp_faults::FaultPlan`] used by
//! the distributed drivers: a fleet fault removes a whole device from
//! the scheduler (every job running there is requeued; long jobs resume
//! from their last durable slab on another device), and a corruption
//! fault flips a byte inside a committed slab file so the CRC seal must
//! catch it on the next resume.
//!
//! Plans are pure data generated from a seed, so a run under a plan is
//! exactly replayable — the same determinism contract as `FaultPlan`.

/// Permanently kills one device at an absolute model time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceKill {
    /// Fleet device index.
    pub device: usize,
    /// Model-time nanoseconds at which the device dies.
    pub at_nanos: u64,
}

/// Flips one byte of a committed checkpoint slab of `job` right after
/// its `after_slices`-th completed slice (1-based). The corruption is
/// detected by the CRC seal on the next resume; the scheduler then
/// restarts the job from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptSlab {
    /// Target job id.
    pub job: usize,
    /// Completed-slice count (1-based) after which the flip happens.
    pub after_slices: usize,
}

/// Permanently degrades one device's compute rate from an absolute model
/// time onward — the fleet analogue of
/// `scalefbp_faults::FaultKind::SlowDevice`. Dispatches *started* at or
/// after `from_nanos` on the device take `factor`× their healthy
/// modelled duration; results are never perturbed, only model time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceSlow {
    /// Fleet device index.
    pub device: usize,
    /// Integer slowdown multiplier (≥ 2 to be meaningful).
    pub factor: u32,
    /// Model-time nanoseconds from which dispatches run degraded.
    pub from_nanos: u64,
}

/// A deterministic schedule of fleet-level faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetFaultPlan {
    /// Device kills, any order; only the earliest kill per device
    /// matters (death is permanent).
    pub kills: Vec<DeviceKill>,
    /// Checkpoint corruptions.
    pub corruptions: Vec<CorruptSlab>,
    /// Compute-rate slowdowns; only the strongest factor per device
    /// matters once its `from_nanos` has passed.
    pub slowdowns: Vec<DeviceSlow>,
}

impl FleetFaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// A seeded plan that kills roughly half the fleet (never the whole
    /// fleet — at least one device always survives so every requeued
    /// job can finish) at times spread over the middle of `horizon_nanos`.
    pub fn generate(seed: u64, devices: usize, horizon_nanos: u64) -> Self {
        assert!(devices >= 1, "fleet must have at least one device");
        let victims = devices / 2; // devices=1 → no kills
        let mut state = seed ^ 0x5EED_F1EE_7C0F_FEE5;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut kills = Vec::with_capacity(victims);
        let mut used = Vec::new();
        while kills.len() < victims {
            let device = (next() >> 33) as usize % devices;
            if used.contains(&device) {
                continue;
            }
            used.push(device);
            // Somewhere in the middle half of the horizon, so work is
            // both in flight before the kill and still pending after.
            let span = (horizon_nanos / 2).max(1);
            let at_nanos = horizon_nanos / 4 + (next() >> 33) % span;
            kills.push(DeviceKill { device, at_nanos });
        }
        kills.sort_by_key(|k| (k.at_nanos, k.device));
        FleetFaultPlan {
            kills,
            corruptions: Vec::new(),
            slowdowns: Vec::new(),
        }
    }

    /// A seeded straggler plan: no kills or corruption, just `count`
    /// distinct devices degraded to `1/factor` of their healthy compute
    /// rate, each from a time in the first half of `horizon_nanos` (so a
    /// meaningful share of the workload runs degraded). At least one
    /// device always stays at full rate.
    pub fn generate_stragglers(
        seed: u64,
        devices: usize,
        count: usize,
        factor: u32,
        horizon_nanos: u64,
    ) -> Self {
        assert!(devices >= 1, "fleet must have at least one device");
        let count = count.min(devices.saturating_sub(1));
        let mut state = seed ^ 0x57AA_661E_F1EE_7C0F;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut slowdowns: Vec<DeviceSlow> = Vec::with_capacity(count);
        while slowdowns.len() < count {
            let device = (next() >> 33) as usize % devices;
            if slowdowns.iter().any(|s| s.device == device) {
                continue;
            }
            let span = (horizon_nanos / 2).max(1);
            slowdowns.push(DeviceSlow {
                device,
                factor: factor.max(2),
                from_nanos: (next() >> 33) % span,
            });
        }
        slowdowns.sort_by_key(|s| (s.from_nanos, s.device));
        FleetFaultPlan {
            kills: Vec::new(),
            corruptions: Vec::new(),
            slowdowns,
        }
    }

    /// Adds a checkpoint-corruption event.
    pub fn with_corruption(mut self, job: usize, after_slices: usize) -> Self {
        self.corruptions.push(CorruptSlab { job, after_slices });
        self
    }

    /// Adds a compute-rate slowdown event.
    pub fn with_slowdown(mut self, device: usize, factor: u32, from_nanos: u64) -> Self {
        self.slowdowns.push(DeviceSlow {
            device,
            factor,
            from_nanos,
        });
        self
    }

    /// The slowdown factor in force on `device` at model time `at_nanos`
    /// (the strongest one whose `from_nanos` has passed), or 1 if the
    /// device runs at full rate.
    pub fn slow_factor_at(&self, device: usize, at_nanos: u64) -> u32 {
        self.slowdowns
            .iter()
            .filter(|s| s.device == device && s.from_nanos <= at_nanos)
            .map(|s| s.factor.max(1))
            .max()
            .unwrap_or(1)
    }

    /// The (earliest) time at which `device` dies, if any.
    pub fn kill_time(&self, device: usize) -> Option<u64> {
        self.kills
            .iter()
            .filter(|k| k.device == device)
            .map(|k| k.at_nanos)
            .min()
    }

    /// Whether `job`'s checkpoint is corrupted after its
    /// `completed_slices`-th slice.
    pub fn corrupts(&self, job: usize, completed_slices: usize) -> bool {
        self.corruptions
            .iter()
            .any(|c| c.job == job && c.after_slices == completed_slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_spares_a_device() {
        let a = FleetFaultPlan::generate(7, 4, 1_000_000);
        let b = FleetFaultPlan::generate(7, 4, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.kills.len(), 2);
        let victims: Vec<usize> = a.kills.iter().map(|k| k.device).collect();
        assert!(victims.iter().all(|&d| d < 4));
        assert!((0..4).any(|d| !victims.contains(&d)));
        for k in &a.kills {
            assert!(k.at_nanos >= 250_000 && k.at_nanos < 750_000);
        }
    }

    #[test]
    fn single_device_fleet_is_never_killed() {
        let plan = FleetFaultPlan::generate(3, 1, 1_000);
        assert!(plan.kills.is_empty());
    }

    #[test]
    fn kill_time_picks_earliest() {
        let plan = FleetFaultPlan {
            kills: vec![
                DeviceKill {
                    device: 1,
                    at_nanos: 500,
                },
                DeviceKill {
                    device: 1,
                    at_nanos: 100,
                },
            ],
            ..Default::default()
        };
        assert_eq!(plan.kill_time(1), Some(100));
        assert_eq!(plan.kill_time(0), None);
    }

    #[test]
    fn straggler_plans_are_deterministic_and_spare_a_device() {
        let a = FleetFaultPlan::generate_stragglers(9, 4, 2, 3, 1_000_000);
        assert_eq!(
            a,
            FleetFaultPlan::generate_stragglers(9, 4, 2, 3, 1_000_000)
        );
        assert!(a.kills.is_empty() && a.corruptions.is_empty());
        assert_eq!(a.slowdowns.len(), 2);
        let slowed: Vec<usize> = a.slowdowns.iter().map(|s| s.device).collect();
        assert!((0..4).any(|d| !slowed.contains(&d)));
        for s in &a.slowdowns {
            assert_eq!(s.factor, 3);
            assert!(s.from_nanos < 500_000);
        }
        // A single-device fleet is never degraded.
        assert!(FleetFaultPlan::generate_stragglers(9, 1, 2, 3, 1_000)
            .slowdowns
            .is_empty());
    }

    #[test]
    fn slow_factor_respects_onset_time_and_takes_the_strongest() {
        let plan = FleetFaultPlan::none()
            .with_slowdown(2, 3, 1_000)
            .with_slowdown(2, 5, 2_000);
        assert_eq!(plan.slow_factor_at(2, 0), 1);
        assert_eq!(plan.slow_factor_at(2, 1_000), 3);
        assert_eq!(plan.slow_factor_at(2, 2_500), 5);
        assert_eq!(plan.slow_factor_at(0, 9_999), 1);
    }
}
