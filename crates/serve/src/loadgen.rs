//! Seeded, deterministic workload generation for the scheduler.
//!
//! Arrivals follow a Poisson process sampled from a fixed-seed LCG, so
//! the same [`WorkloadSpec`] always produces byte-identical job streams
//! — the load-gen half of the serving determinism contract.

use std::sync::Arc;

use scalefbp_geom::CbctGeometry;
use scalefbp_phantom::{forward_project, uniform_ball};

use crate::job::{JobClass, JobSpec};

/// Parameters of one synthetic multi-tenant workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// RNG seed for arrival times and tenant assignment.
    pub seed: u64,
    /// Number of tenants; jobs are assigned round-robin-by-RNG.
    pub tenants: usize,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Mean arrival rate in jobs per simulated second (all tenants).
    pub arrival_rate_hz: f64,
    /// Cube size `N` of the small in-core scan geometry.
    pub small_n: usize,
    /// Every `long_every`-th job (1-based) is a long out-of-core job;
    /// 0 disables long jobs.
    pub long_every: usize,
    /// Cube size of the long-job geometry.
    pub long_n: usize,
    /// `N_c` slab-count target of the long jobs' out-of-core plan.
    pub long_nc: usize,
    /// Durable slab commits per scheduling slice of a long job.
    pub long_slice_slabs: usize,
}

impl WorkloadSpec {
    /// A small mixed workload with sane defaults for tests and CI.
    pub fn new(seed: u64, tenants: usize, jobs: usize, arrival_rate_hz: f64) -> Self {
        WorkloadSpec {
            seed,
            tenants,
            jobs,
            arrival_rate_hz,
            small_n: 12,
            long_every: 5,
            long_n: 16,
            long_nc: 6,
            long_slice_slabs: 2,
        }
    }

    /// Disables long jobs (pure small-job traffic).
    pub fn small_only(mut self) -> Self {
        self.long_every = 0;
        self
    }
}

/// The test-scale scan geometry for cube size `n`: `1.5n` projections
/// of `1.5n × 1.5n` pixels, the repo's `ideal` convention.
pub fn scan_geometry(n: usize) -> CbctGeometry {
    CbctGeometry::ideal(n, n * 3 / 2, n * 3 / 2, n * 3 / 2)
}

/// Generates the job stream: seeded exponential inter-arrival gaps,
/// seeded tenant assignment, and a fixed small/long mix. Projections
/// are synthesized once per geometry and shared across jobs.
pub fn generate(spec: &WorkloadSpec) -> Vec<JobSpec> {
    assert!(spec.tenants >= 1, "need at least one tenant");
    assert!(spec.arrival_rate_hz > 0.0, "arrival rate must be positive");
    let small_geom = scan_geometry(spec.small_n);
    let small_proj = Arc::new(forward_project(
        &small_geom,
        &uniform_ball(&small_geom, 0.5, 1.0),
    ));
    let long_geom = scan_geometry(spec.long_n);
    let long_proj = if spec.long_every > 0 {
        Some(Arc::new(forward_project(
            &long_geom,
            &uniform_ball(&long_geom, 0.55, 1.0),
        )))
    } else {
        None
    };

    let mut state = spec.seed ^ 0x5EED_10AD_6E4E_0001;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    // Uniform in (0, 1): top 24 bits, offset by half a step so the
    // logarithm below never sees zero.
    let mut uniform = move || ((next() >> 40) as f64 + 0.5) / (1u64 << 24) as f64;

    let mut arrival_secs = 0.0f64;
    let mut jobs = Vec::with_capacity(spec.jobs);
    for id in 0..spec.jobs {
        arrival_secs += -uniform().ln() / spec.arrival_rate_hz;
        let tenant = (uniform() * spec.tenants as f64) as usize % spec.tenants;
        let long = spec.long_every > 0 && (id + 1) % spec.long_every == 0;
        let (class, geom, projections) = if long {
            (
                JobClass::Long {
                    nc: spec.long_nc,
                    slice_slabs: spec.long_slice_slabs,
                },
                long_geom.clone(),
                long_proj.clone().expect("long projections"),
            )
        } else {
            (JobClass::Small, small_geom.clone(), small_proj.clone())
        };
        jobs.push(JobSpec {
            id,
            tenant,
            arrival_nanos: (arrival_secs * 1e9).round() as u64,
            class,
            geom,
            projections,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let spec = WorkloadSpec::new(42, 3, 20, 100.0);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_nanos, y.arrival_nanos);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn arrivals_are_monotone_and_rate_scaled() {
        let slow = generate(&WorkloadSpec::new(1, 2, 40, 10.0));
        let fast = generate(&WorkloadSpec::new(1, 2, 40, 1000.0));
        assert!(slow
            .windows(2)
            .all(|w| w[0].arrival_nanos <= w[1].arrival_nanos));
        assert!(
            slow.last().unwrap().arrival_nanos > fast.last().unwrap().arrival_nanos,
            "a 100× faster rate must compress the arrival span"
        );
    }

    #[test]
    fn long_job_mix_follows_long_every() {
        let jobs = generate(&WorkloadSpec::new(9, 2, 10, 50.0));
        let longs: Vec<usize> = jobs
            .iter()
            .filter(|j| matches!(j.class, JobClass::Long { .. }))
            .map(|j| j.id)
            .collect();
        assert_eq!(longs, vec![4, 9]);
        let none = generate(&WorkloadSpec::new(9, 2, 10, 50.0).small_only());
        assert!(none.iter().all(|j| j.class == JobClass::Small));
    }

    #[test]
    fn tenants_all_get_traffic() {
        let jobs = generate(&WorkloadSpec::new(4, 3, 60, 100.0));
        for t in 0..3 {
            assert!(jobs.iter().any(|j| j.tenant == t), "tenant {t} starved");
        }
    }
}
