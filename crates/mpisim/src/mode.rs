//! Which reduction algorithm the distributed drivers run.

use std::fmt;
use std::str::FromStr;

/// Reduction algorithm selector for the distributed reconstruction paths
/// (`--reduce-mode` on the CLI).
///
/// The three modes differ in message pattern, not in mathematics:
///
/// * [`Dense`](ReduceMode::Dense) — every rank ships its whole partial
///   volume to the root, which folds the contributions in ascending rank
///   order. Root ingress grows linearly in the rank count.
/// * [`Hierarchical`](ReduceMode::Hierarchical) — the paper's node-aware
///   two-level tree (Section 4.4.2). This is the default and reproduces
///   the pre-existing driver behaviour bit-for-bit.
/// * [`Segmented`](ReduceMode::Segmented) — the paper's headline
///   collective: a chunk-pipelined reduce-scatter in which each rank
///   receives only its own `Nz` segment of the volume, overlapping
///   communication of one segment with accumulation of the next.
///
/// `Dense` and `Segmented` both use the *canonical rank-ordered
/// summation* (a left fold over ranks `0..p`), so their results are
/// bit-identical to each other; see `docs/communication.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReduceMode {
    /// Flat canonical reduce to the root.
    Dense,
    /// Node-aware two-level tree reduce (pre-existing default).
    #[default]
    Hierarchical,
    /// Chunk-pipelined segmented reduce-scatter.
    Segmented,
}

impl ReduceMode {
    /// Every mode, in CLI listing order.
    pub const ALL: [ReduceMode; 3] = [
        ReduceMode::Dense,
        ReduceMode::Hierarchical,
        ReduceMode::Segmented,
    ];

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceMode::Dense => "dense",
            ReduceMode::Hierarchical => "hierarchical",
            ReduceMode::Segmented => "segmented",
        }
    }
}

impl fmt::Display for ReduceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ReduceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(ReduceMode::Dense),
            "hierarchical" => Ok(ReduceMode::Hierarchical),
            "segmented" => Ok(ReduceMode::Segmented),
            other => Err(format!(
                "unknown reduce mode '{other}' (expected dense|hierarchical|segmented)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_hierarchical() {
        assert_eq!(ReduceMode::default(), ReduceMode::Hierarchical);
    }

    #[test]
    fn names_round_trip() {
        for mode in ReduceMode::ALL {
            assert_eq!(mode.name().parse::<ReduceMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.name());
        }
    }

    #[test]
    fn unknown_name_lists_candidates() {
        let err = "ring".parse::<ReduceMode>().unwrap_err();
        assert!(err.contains("unknown reduce mode 'ring'"), "{err}");
        assert!(err.contains("dense|hierarchical|segmented"), "{err}");
    }
}
