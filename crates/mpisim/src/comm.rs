//! Communicators: tagged point-to-point plus the collectives the paper uses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use scalefbp_faults::{apply_bit_flip, open_frame, seal_frame, Channel, FaultInject, FaultKind};
use scalefbp_obs::{Counter, MetricValue, MetricsRegistry};

/// Communication failures surfaced to fault-aware callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the deadline.
    Timeout {
        /// Expected sender (local rank).
        from: usize,
        /// Expected tag.
        tag: u64,
    },
    /// A wire frame failed to deserialize.
    MalformedFrame {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A checked frame arrived but its CRC-32 seal did not verify — the
    /// payload was corrupted in flight. The frame has already been
    /// consumed; the receiver must treat the message as lost.
    IntegrityFailure {
        /// Sender (local rank) of the corrupt frame.
        from: usize,
        /// Tag of the corrupt frame.
        tag: u64,
        /// Checksum mismatch detail.
        detail: String,
    },
    /// This rank hit an injected [`FaultKind::RankFailure`] — it must stop
    /// participating in the protocol.
    SelfFailed,
    /// The network shut down while waiting.
    Closed,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for rank {from} tag {tag}")
            }
            CommError::MalformedFrame { detail } => write!(f, "malformed frame: {detail}"),
            CommError::IntegrityFailure { from, tag, detail } => {
                write!(f, "corrupt frame from rank {from} tag {tag}: {detail}")
            }
            CommError::SelfFailed => write!(f, "this rank was killed by fault injection"),
            CommError::Closed => write!(f, "network closed"),
        }
    }
}

impl std::error::Error for CommError {}

/// A message in flight.
#[derive(Debug)]
struct Envelope {
    context: u64,
    from: usize,
    tag: u64,
    payload: Vec<u8>,
}

/// Cumulative network counters (shared by all communicators of a world).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Total messages sent.
    pub messages: u64,
}

pub(crate) struct Network {
    senders: Vec<Sender<Envelope>>,
    /// Per-rank traffic counters live here; [`Network::stats`] folds them
    /// back into the aggregate [`NetworkStats`] view.
    pub(crate) metrics: MetricsRegistry,
    /// Consulted on every send and on every delivered receive; the
    /// world-rank operation counters it keeps are what make injected
    /// faults land on the same operations every run.
    injector: Arc<dyn FaultInject>,
}

impl Network {
    /// Aggregate traffic counters, folded from the per-rank metrics.
    pub(crate) fn stats(&self) -> NetworkStats {
        let snap = self.metrics.snapshot();
        let mut stats = NetworkStats::default();
        for (key, value) in snap.entries() {
            if let MetricValue::Counter(c) = value {
                match key.name.as_str() {
                    "mpi.send.bytes" => stats.bytes += c,
                    "mpi.send.messages" => stats.messages += c,
                    _ => {}
                }
            }
        }
        stats
    }
}

/// Cached counter handles for one world rank — registered once at world
/// construction, then every send/receive is a single atomic increment
/// (the registry lock is never taken on the message path).
#[derive(Clone)]
struct RankCounters {
    sent_bytes: Counter,
    sent_messages: Counter,
    recv_messages: Counter,
    collective_calls: Counter,
}

impl RankCounters {
    fn new(metrics: &MetricsRegistry, world_rank: usize) -> Self {
        RankCounters {
            sent_bytes: metrics.rank_counter("mpi.send.bytes", world_rank),
            sent_messages: metrics.rank_counter("mpi.send.messages", world_rank),
            recv_messages: metrics.rank_counter("mpi.recv.messages", world_rank),
            collective_calls: metrics.rank_counter("mpi.collective.calls", world_rank),
        }
    }
}

/// Reserved tag namespace for collective internals.
const COLLECTIVE_TAG: u64 = u64::MAX - 1024;

/// Tag namespace for segmented reduce-scatter chunks. Every chunk of every
/// call gets a *unique* tag (`base + (call_seq << 32) + chunk_id`), so a
/// mismatched chunk is a protocol error rather than a silent wrong-chunk
/// delivery — and the fault-tolerant piece protocol can re-request a
/// specific chunk by tag.
const SEGREDUCE_TAG_BASE: u64 = 1 << 61;

/// An MPI-style communicator handle owned by one rank thread.
///
/// A communicator formed by [`split`](Self::split) maps its local ranks onto
/// a subset of the world's mailboxes and stamps every message with a context
/// id, so concurrent collectives in different groups never interfere — the
/// property that makes the paper's *segmented* reduce correct.
pub struct Communicator {
    network: Arc<Network>,
    /// Local rank → world rank.
    group: Arc<Vec<usize>>,
    /// This thread's local rank.
    local: usize,
    context: u64,
    /// How many times `split` has been called on this communicator (all
    /// members call collectives in lockstep, so this agrees everywhere).
    split_seq: u64,
    /// How many segmented reduce-scatters this communicator has run; like
    /// `split_seq` it agrees across members and disambiguates chunk tags
    /// between consecutive calls.
    seg_seq: u64,
    receiver: Receiver<Envelope>,
    /// Out-of-order messages awaiting a matching `recv`. Shared by every
    /// communicator of this rank (parents and `split` children drain the
    /// same mailbox, so a message stashed by one must stay visible to all).
    pending: Arc<Mutex<Vec<Envelope>>>,
    /// This world rank's cached metric handles (world-rank keyed, so
    /// `split` children keep attributing traffic to the same rank).
    counters: RankCounters,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.local)
            .field("size", &self.group.len())
            .field("context", &self.context)
            .finish()
    }
}

impl Communicator {
    pub(crate) fn world_with_observability(
        size: usize,
        injector: Arc<dyn FaultInject>,
        metrics: MetricsRegistry,
    ) -> (Vec<Communicator>, Arc<Network>) {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let network = Arc::new(Network {
            senders,
            metrics,
            injector,
        });
        let group = Arc::new((0..size).collect::<Vec<_>>());
        let comms = receivers
            .into_iter()
            .enumerate()
            .map(|(local, receiver)| Communicator {
                network: Arc::clone(&network),
                group: Arc::clone(&group),
                local,
                context: 0,
                split_seq: 0,
                seg_seq: 0,
                receiver,
                pending: Arc::new(Mutex::new(Vec::new())),
                counters: RankCounters::new(&network.metrics, local),
            })
            .collect();
        (comms, network)
    }

    /// This rank's id in the original world (stable across `split`s; fault
    /// injection sites are addressed by world rank).
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.group[self.local]
    }

    /// True once this rank has hit an injected rank failure.
    pub fn self_failed(&self) -> bool {
        self.network.injector.rank_failed(self.world_rank())
    }

    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.local
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Network-wide traffic counters.
    pub fn network_stats(&self) -> NetworkStats {
        self.network.stats()
    }

    /// The registry holding this world's per-rank communication metrics
    /// (`mpi.send.bytes`, `mpi.recv.messages`, …). Rank closures use it
    /// to register their own counters into the same exported snapshot.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.network.metrics
    }

    /// Sends `payload` to local rank `to` with `tag`.
    ///
    /// Under fault injection, a scheduled delay sleeps before delivery, a
    /// drop discards the payload after counting it, and a rank failure (or
    /// a previously failed self) suppresses delivery silently — use
    /// [`try_send`](Self::try_send) to observe the failure.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<u8>) {
        let _ = self.try_send(to, tag, payload);
    }

    /// Fault-aware send: reports [`CommError::SelfFailed`] when this rank
    /// has been killed by injection (the message is not delivered).
    pub fn try_send(&self, to: usize, tag: u64, payload: Vec<u8>) -> Result<(), CommError> {
        assert!(to < self.size(), "send to rank {to} of {}", self.size());
        let me = self.world_rank();
        if self.network.injector.rank_failed(me) {
            return Err(CommError::SelfFailed);
        }
        let mut dropped = false;
        match self.network.injector.on_op(me, Channel::Send) {
            Some(FaultKind::MessageDelay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(FaultKind::MessageDrop) => dropped = true,
            Some(FaultKind::RankFailure) => return Err(CommError::SelfFailed),
            _ => {}
        }
        self.counters.sent_bytes.add(payload.len() as u64);
        self.counters.sent_messages.inc();
        if dropped {
            return Ok(()); // the sender never learns — that is the point
        }
        let world_to = self.group[to];
        // A rank that has already returned (e.g. the root after resuming
        // everything from a checkpoint) can never observe this message,
        // so delivery and drop are indistinguishable — drop it.
        let _ = self.network.senders[world_to].send(Envelope {
            context: self.context,
            from: self.local,
            tag,
            payload,
        });
        Ok(())
    }

    /// Control-plane send: delivered unconditionally, bypassing the fault
    /// injector and the sender's failure state. The fault-tolerant
    /// protocols use it for orchestration messages (shutdown, takeover)
    /// whose loss would hang the world — injected faults target the data
    /// plane only. Traffic is still counted.
    pub fn send_control(&self, to: usize, tag: u64, payload: Vec<u8>) {
        assert!(to < self.size(), "send to rank {to} of {}", self.size());
        self.counters.sent_bytes.add(payload.len() as u64);
        self.counters.sent_messages.inc();
        let world_to = self.group[to];
        // As in `try_send`: an already-exited peer makes this a no-op.
        let _ = self.network.senders[world_to].send(Envelope {
            context: self.context,
            from: self.local,
            tag,
            payload,
        });
    }

    /// Blocking selective receive from local rank `from` with `tag`.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<u8> {
        self.recv_inner(from, tag, None)
            .expect("receive failed (injected rank failure without fault handling?)")
    }

    /// Selective receive with a deadline. Returns
    /// [`CommError::Timeout`] when no matching message arrives in time —
    /// the failure-detection primitive of the fault-tolerant paths.
    pub fn recv_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<u8>, CommError> {
        self.recv_inner(from, tag, Some(timeout))
    }

    /// Shared receive core. Injection is consulted once per *delivered*
    /// message (never per poll attempt), so the operation count a fault
    /// plan indexes into stays deterministic even when callers poll with
    /// short timeouts.
    fn recv_inner(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<u8>, CommError> {
        assert!(
            from < self.size(),
            "recv from rank {from} of {}",
            self.size()
        );
        let me = self.world_rank();
        if self.network.injector.rank_failed(me) {
            return Err(CommError::SelfFailed);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut pending = self.pending.lock();
        if let Some(idx) = pending
            .iter()
            .position(|e| e.context == self.context && e.from == from && e.tag == tag)
        {
            // `remove`, not `swap_remove`: the stash must stay in arrival
            // order so two messages in the same `(from, tag)` class can
            // never overtake each other (MPI's non-overtaking guarantee).
            let payload = pending.remove(idx).payload;
            drop(pending);
            self.on_delivery(me)?;
            return Ok(payload);
        }
        loop {
            let env = match deadline {
                None => match self.receiver.recv() {
                    Ok(env) => env,
                    Err(_) => return Err(CommError::Closed),
                },
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(CommError::Timeout { from, tag });
                    }
                    match self.receiver.recv_timeout(d - now) {
                        Ok(env) => env,
                        Err(RecvTimeoutError::Timeout) => {
                            return Err(CommError::Timeout { from, tag })
                        }
                        Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
                    }
                }
            };
            if env.context == self.context && env.from == from && env.tag == tag {
                drop(pending);
                self.on_delivery(me)?;
                return Ok(env.payload);
            }
            pending.push(env);
        }
    }

    /// Receive-side injection hook, called once per delivered message.
    fn on_delivery(&self, me: usize) -> Result<(), CommError> {
        self.counters.recv_messages.inc();
        match self.network.injector.on_op(me, Channel::Recv) {
            Some(FaultKind::MessageDelay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                Ok(())
            }
            Some(FaultKind::RankFailure) => Err(CommError::SelfFailed),
            _ => Ok(()),
        }
    }

    /// Drains this rank's mailbox without fault instrumentation until a
    /// `(from, tag)` match arrives. Used by dead or spectator ranks that
    /// only wait for shutdown; skipping the injector here keeps protocol
    /// operation counts deterministic.
    pub fn drain_until(&mut self, from: usize, tag: u64) {
        let mut pending = self.pending.lock();
        if let Some(idx) = pending
            .iter()
            .position(|e| e.context == self.context && e.from == from && e.tag == tag)
        {
            pending.remove(idx);
            return;
        }
        loop {
            match self.receiver.recv() {
                Ok(env) => {
                    if env.context == self.context && env.from == from && env.tag == tag {
                        return;
                    }
                    // Everything else is discarded: a dead rank consumes
                    // and ignores its traffic.
                }
                Err(_) => return,
            }
        }
    }

    /// Convenience: send an f32 slice.
    pub fn send_f32(&self, to: usize, tag: u64, data: &[f32]) {
        self.send(to, tag, encode_f32(data));
    }

    /// Convenience: receive an f32 vector.
    pub fn recv_f32(&mut self, from: usize, tag: u64) -> Vec<f32> {
        let bytes = self.recv(from, tag);
        decode_f32(&bytes).expect("payload is not an f32 array")
    }

    /// Fault-aware f32 receive with a deadline.
    pub fn recv_f32_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        let bytes = self.recv_timeout(from, tag, timeout)?;
        decode_f32(&bytes)
    }

    /// Integrity-checked f32 send: seals the encoded payload in a CRC-32
    /// frame before transmission. Injection on [`Channel::Corrupt`] flips
    /// one seeded bit of the sealed frame *after* sealing, modelling
    /// on-the-wire corruption the receiver's checksum must catch. Used by
    /// the fault-tolerant data plane; the raw [`send_f32`](Self::send_f32)
    /// path and the collectives keep their unsealed framing.
    pub fn send_f32_checked(&self, to: usize, tag: u64, data: &[f32]) -> Result<(), CommError> {
        let mut frame = seal_frame(&encode_f32(data));
        let me = self.world_rank();
        if let Some(FaultKind::BitFlip { seed }) = self.network.injector.on_op(me, Channel::Corrupt)
        {
            apply_bit_flip(&mut frame, seed);
        }
        self.try_send(to, tag, frame)
    }

    /// Integrity-checked f32 receive with a deadline. Verifies the CRC-32
    /// seal before decoding; a mismatch is reported as
    /// [`CommError::IntegrityFailure`] and the corrupt frame is consumed —
    /// callers recover exactly as they would from a dropped message.
    pub fn recv_f32_checked_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        let frame = self.recv_timeout(from, tag, timeout)?;
        match open_frame(&frame) {
            Ok(payload) => decode_f32(payload),
            Err(e) => Err(CommError::IntegrityFailure {
                from,
                tag,
                detail: e.to_string(),
            }),
        }
    }

    /// Broadcast from `root` to all ranks (binomial tree). Non-roots pass
    /// an empty buffer and receive the root's.
    pub fn bcast(&mut self, root: usize, data: &mut Vec<u8>) {
        self.counters.collective_calls.inc();
        let p = self.size();
        if p == 1 {
            return;
        }
        // Rotate so the root is virtual rank 0.
        let me = (self.local + p - root) % p;
        let mut mask = 1usize;
        // Receive phase: find the bit where I get the data.
        while mask < p {
            if me & mask != 0 {
                let src = (me - mask + root) % p;
                *data = self.recv(src, COLLECTIVE_TAG + 1);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to my subtree.
        mask >>= 1;
        while mask > 0 {
            if me + mask < p {
                let dst = (me + mask + root) % p;
                self.send(dst, COLLECTIVE_TAG + 1, data.clone());
            }
            mask >>= 1;
        }
    }

    /// Typed broadcast of an f32 buffer: on return every rank's `buf`
    /// holds the root's values bit-for-bit. All ranks must pass buffers
    /// of the same length — unlike [`bcast`](Self::bcast), receivers keep
    /// their allocation, which lets callers broadcast straight into a
    /// sub-slice of a larger stack or volume (the row/segment allgathers
    /// of the distributed iterative driver).
    pub fn bcast_f32(&mut self, root: usize, buf: &mut [f32]) -> Result<(), CommError> {
        let mut bytes = if self.local == root {
            encode_f32(buf)
        } else {
            Vec::new()
        };
        self.bcast(root, &mut bytes);
        if self.local != root {
            let vals = decode_f32(&bytes)?;
            if vals.len() != buf.len() {
                return Err(CommError::MalformedFrame {
                    detail: format!(
                        "bcast_f32 length mismatch: got {}, expected {}",
                        vals.len(),
                        buf.len()
                    ),
                });
            }
            buf.copy_from_slice(&vals);
        }
        Ok(())
    }

    /// Allgather of rank-owned contiguous segments: rank `r` contributes
    /// `mine` (exactly `counts[r]` values) and every rank returns the
    /// concatenation of all segments in ascending rank order — pure
    /// concatenation, no arithmetic, so the result is trivially
    /// bit-identical across ranks. One broadcast per owner.
    pub fn allgather_f32_segments(
        &mut self,
        mine: &[f32],
        counts: &[usize],
    ) -> Result<Vec<f32>, CommError> {
        let p = self.size();
        assert_eq!(counts.len(), p, "one segment count per rank");
        assert_eq!(
            mine.len(),
            counts[self.local],
            "segment length does not match this rank's count"
        );
        self.counters.collective_calls.inc();
        let total: usize = counts.iter().sum();
        let mut out = vec![0.0f32; total];
        let mut begin = 0usize;
        for (owner, &count) in counts.iter().enumerate() {
            let seg = &mut out[begin..begin + count];
            if owner == self.local {
                seg.copy_from_slice(mine);
            }
            self.bcast_f32(owner, seg)?;
            begin += count;
        }
        Ok(out)
    }

    /// Gather every rank's buffer to `root`; returns `Some(vec)` (rank
    /// order) at the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        self.counters.collective_calls.inc();
        if self.local == root {
            let mut out = Vec::with_capacity(self.size());
            for from in 0..self.size() {
                out.push(if from == root {
                    data.clone()
                } else {
                    self.recv(from, COLLECTIVE_TAG + 2)
                });
            }
            Some(out)
        } else {
            self.send(root, COLLECTIVE_TAG + 2, data);
            None
        }
    }

    /// Barrier: gather of empty payloads followed by a broadcast.
    pub fn barrier(&mut self) {
        let _ = self.gather(0, Vec::new());
        let mut token = if self.local == 0 {
            vec![1u8]
        } else {
            Vec::new()
        };
        self.bcast(0, &mut token);
    }

    /// Binomial-tree sum-reduction of f32 buffers to `root` — the
    /// `MPI_Reduce` of Figure 3b/Figure 8. Every rank passes its
    /// contribution in `buf`; on return the root's `buf` holds the
    /// element-wise sum (other ranks' buffers are unspecified).
    ///
    /// `⌈log₂ p⌉` rounds; each rank sends at most once.
    pub fn reduce_sum_f32(&mut self, root: usize, buf: &mut [f32]) {
        self.counters.collective_calls.inc();
        let p = self.size();
        if p == 1 {
            return;
        }
        let me = (self.local + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if me & mask != 0 {
                // Send my partial to the partner below and exit.
                let dst = (me - mask + root) % p;
                self.send_f32(dst, COLLECTIVE_TAG + 3, buf);
                return;
            }
            let src_virtual = me + mask;
            if src_virtual < p {
                let src = (src_virtual + root) % p;
                let incoming = self.recv_f32(src, COLLECTIVE_TAG + 3);
                assert_eq!(incoming.len(), buf.len(), "reduce buffer length mismatch");
                for (a, b) in buf.iter_mut().zip(&incoming) {
                    *a += b;
                }
            }
            mask <<= 1;
        }
    }

    /// Flat *canonical* sum-reduction to `root`: every non-root rank ships
    /// its whole contribution, and the root folds the raw buffers in
    /// ascending rank order (`((b₀ + b₁) + b₂) + …`). That ordering is the
    /// bit-exactness contract shared with
    /// [`segmented_reduce_scatter_f32`](Self::segmented_reduce_scatter_f32)
    /// and [`hierarchical_reduce_sum_canonical`]; see
    /// `docs/communication.md`.
    ///
    /// Root ingress is `(p-1) · len` values — linear in `p`, the prior-art
    /// dense baseline the paper's segmented collective replaces.
    pub fn reduce_sum_f32_canonical(
        &mut self,
        root: usize,
        buf: &mut [f32],
    ) -> Result<(), CommError> {
        self.counters.collective_calls.inc();
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        if self.local != root {
            return self.try_send(root, COLLECTIVE_TAG + 4, encode_f32(buf));
        }
        let own = buf.to_vec();
        for r in 0..p {
            if r == root {
                if r == 0 {
                    continue; // `buf` already holds this rank's contribution
                }
                for (a, b) in buf.iter_mut().zip(&own) {
                    *a += *b;
                }
            } else {
                let bytes = self.recv_inner(r, COLLECTIVE_TAG + 4, None)?;
                let incoming = decode_f32(&bytes)?;
                assert_eq!(incoming.len(), buf.len(), "reduce buffer length mismatch");
                if r == 0 {
                    buf.copy_from_slice(&incoming);
                } else {
                    for (a, b) in buf.iter_mut().zip(&incoming) {
                        *a += *b;
                    }
                }
            }
        }
        Ok(())
    }

    /// The paper's segmented `MPI_Reduce` (Figure 8): a chain-pipelined
    /// reduce-scatter in which rank `r` ends up holding only the reduced
    /// values of its own segment (`counts[r]` elements, laid out
    /// contiguously in rank order).
    ///
    /// For every `chunk`-element chunk of every segment, a partial flows
    /// down the rank chain `0 → 1 → … → p-1`, each rank adding its own
    /// contribution — a running left fold, so the result is bit-identical
    /// to [`reduce_sum_f32_canonical`](Self::reduce_sum_f32_canonical) on
    /// the same data. The tail rank forwards each finished chunk straight
    /// to its owner, and owners collect their deliveries only after
    /// feeding the whole chain, so chunk `b` is in flight while chunk
    /// `b+1` is still being accumulated.
    ///
    /// Per-rank traffic: at most `total` elements of through-traffic on
    /// the chain, plus the owner's `counts[r]` elements of finished
    /// results — the `Nz/p` scaling the paper's Fig. 9/10 measures
    /// (counted under `mpisim.segreduce.*`).
    pub fn segmented_reduce_scatter_f32(
        &mut self,
        buf: &[f32],
        counts: &[usize],
        chunk: usize,
    ) -> Result<Vec<f32>, CommError> {
        let p = self.size();
        assert_eq!(counts.len(), p, "one segment count per rank");
        assert!(chunk > 0, "chunk must be positive");
        let total: usize = counts.iter().sum();
        assert_eq!(total, buf.len(), "segment counts must cover the buffer");
        self.counters.collective_calls.inc();

        let me = self.local;
        let world_rank = self.world_rank();
        let metrics = self.metrics();
        let calls = metrics.rank_counter("mpisim.segreduce.calls", world_rank);
        let chunks_ctr = metrics.rank_counter("mpisim.segreduce.chunks", world_rank);
        let chain_bytes = metrics.rank_counter("mpisim.segreduce.chain.bytes", world_rank);
        let owner_bytes = metrics.rank_counter("mpisim.segreduce.owner.bytes", world_rank);
        calls.inc();

        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for &c in counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let my_begin = offsets[me];
        let mut out = buf[my_begin..offsets[me + 1]].to_vec();
        if p == 1 {
            return Ok(out);
        }

        let seq = self.seg_seq;
        self.seg_seq += 1;
        // Every rank enumerates (owner, chunk) identically, so the derived
        // tags agree without any negotiation.
        let mut chunk_id: u64 = 0;
        // Chunks this rank owns but the tail rank finishes: collected
        // after the chain loop so waiting for them never stalls the chain.
        let mut deliveries: Vec<(usize, usize, u64)> = Vec::new();
        for owner in 0..p {
            let mut c0 = offsets[owner];
            let seg_end = offsets[owner + 1];
            while c0 < seg_end {
                let c1 = (c0 + chunk).min(seg_end);
                debug_assert!(chunk_id < u64::from(u32::MAX));
                let tag = SEGREDUCE_TAG_BASE + (seq << 32) + chunk_id;
                chunk_id += 1;
                if me == 0 {
                    self.try_send(1, tag, encode_f32(&buf[c0..c1]))?;
                } else {
                    let bytes = self.recv_inner(me - 1, tag, None)?;
                    chain_bytes.add(bytes.len() as u64);
                    let mut partial = decode_f32(&bytes)?;
                    assert_eq!(partial.len(), c1 - c0, "chunk length mismatch");
                    for (a, b) in partial.iter_mut().zip(&buf[c0..c1]) {
                        *a += *b;
                    }
                    if me < p - 1 {
                        self.try_send(me + 1, tag, encode_f32(&partial))?;
                    } else if owner == me {
                        out[c0 - my_begin..c1 - my_begin].copy_from_slice(&partial);
                    } else {
                        self.try_send(owner, tag, encode_f32(&partial))?;
                    }
                }
                chunks_ctr.inc();
                if owner == me && me < p - 1 {
                    deliveries.push((c0 - my_begin, c1 - my_begin, tag));
                }
                c0 = c1;
            }
        }
        for (d0, d1, tag) in deliveries {
            let bytes = self.recv_inner(p - 1, tag, None)?;
            owner_bytes.add(bytes.len() as u64);
            let finished = decode_f32(&bytes)?;
            assert_eq!(finished.len(), d1 - d0, "delivered chunk length mismatch");
            out[d0..d1].copy_from_slice(&finished);
        }
        Ok(out)
    }

    /// `MPI_Comm_split`: ranks with equal `color` form a new communicator,
    /// ordered by `(key, old rank)`. Collective — every rank must call it.
    /// Fails with [`CommError::MalformedFrame`] if the allgathered
    /// membership frames do not deserialize.
    pub fn split(&mut self, color: u64, key: i64) -> Result<Communicator, CommError> {
        // Allgather (gather + bcast) of (color, key, local).
        let mut triple = Vec::with_capacity(24);
        triple.extend_from_slice(&color.to_le_bytes());
        triple.extend_from_slice(&key.to_le_bytes());
        triple.extend_from_slice(&(self.local as u64).to_le_bytes());
        let gathered = self.gather(0, triple.clone());
        let mut all = match gathered {
            Some(v) => v.concat(),
            None => Vec::new(),
        };
        self.bcast(0, &mut all);

        let members = parse_split_frames(&all, color, self.size())?;
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let local = members
            .iter()
            .position(|&(_, r)| r == self.local)
            .ok_or_else(|| CommError::MalformedFrame {
                detail: format!(
                    "split: caller rank {} missing from its own color {color} group",
                    self.local
                ),
            })?;

        self.split_seq += 1;
        let context = self
            .context
            .wrapping_mul(1_000_003)
            .wrapping_add(self.split_seq.wrapping_mul(131))
            .wrapping_add(color)
            .wrapping_add(1);

        Ok(Communicator {
            network: Arc::clone(&self.network),
            group: Arc::new(group),
            local,
            context,
            split_seq: 0,
            seg_seq: 0,
            receiver: self.receiver.clone(),
            pending: Arc::clone(&self.pending),
            counters: self.counters.clone(),
        })
    }
}

/// Encodes an f32 slice as a little-endian payload.
fn encode_f32(data: &[f32]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Decodes a little-endian f32 payload, rejecting ragged lengths.
fn decode_f32(bytes: &[u8]) -> Result<Vec<f32>, CommError> {
    if bytes.len() % 4 != 0 {
        return Err(CommError::MalformedFrame {
            detail: format!("f32 payload length {} is not a multiple of 4", bytes.len()),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Deserializes the `(color, key, rank)` triples allgathered by
/// [`Communicator::split`], returning the sorted members of `color`.
/// Every framing defect — ragged length, truncated field, out-of-range
/// rank — is reported as [`CommError::MalformedFrame`] instead of
/// panicking mid-collective.
fn parse_split_frames(all: &[u8], color: u64, size: usize) -> Result<Vec<(i64, usize)>, CommError> {
    if all.len() % 24 != 0 {
        return Err(CommError::MalformedFrame {
            detail: format!(
                "split allgather payload of {} bytes is not a whole number of 24-byte triples",
                all.len()
            ),
        });
    }
    let field = |chunk: &[u8], at: usize| -> Result<[u8; 8], CommError> {
        chunk
            .get(at..at + 8)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .ok_or_else(|| CommError::MalformedFrame {
                detail: format!("split triple truncated at byte {at}"),
            })
    };
    let mut members: Vec<(i64, usize)> = Vec::new();
    for chunk in all.chunks_exact(24) {
        let c = u64::from_le_bytes(field(chunk, 0)?);
        let k = i64::from_le_bytes(field(chunk, 8)?);
        let r = u64::from_le_bytes(field(chunk, 16)?) as usize;
        if r >= size {
            return Err(CommError::MalformedFrame {
                detail: format!("split triple names rank {r} of a {size}-rank communicator"),
            });
        }
        if c == color {
            members.push((k, r));
        }
    }
    members.sort_unstable();
    Ok(members)
}

/// The paper's hierarchical segmented reduction (Section 4.4.2): ranks on
/// the same node (consecutive blocks of `ranks_per_node`) first reduce to a
/// node leader, then the leaders reduce to `root` — halving inter-node
/// traffic relative to a flat tree when `ranks_per_node > 1`.
///
/// `root` must be a node leader (true for the paper's group leaders, which
/// are rank 0 of each group). On return the root's `buf` holds the sum.
pub fn hierarchical_reduce_sum(
    comm: &mut Communicator,
    root: usize,
    buf: &mut [f32],
    ranks_per_node: usize,
) -> Result<(), CommError> {
    assert!(ranks_per_node > 0, "ranks_per_node must be positive");
    assert_eq!(
        root % ranks_per_node,
        0,
        "root {root} must be a node leader (multiple of {ranks_per_node})"
    );
    // Intra-node reduce to the node leader.
    let node = comm.rank() / ranks_per_node;
    let mut intra = comm.split(node as u64, comm.rank() as i64)?;
    intra.reduce_sum_f32(0, buf);
    let is_leader = intra.rank() == 0;
    // Inter-node reduce among leaders.
    let mut inter = comm.split(u64::from(is_leader), comm.rank() as i64)?;
    if is_leader {
        let root_leader = root / ranks_per_node;
        inter.reduce_sum_f32(root_leader, buf);
    }
    Ok(())
}

/// Contiguous even partition of `len` items into `parts` segments: the
/// first `len % parts` segments get one extra item. The partition is
/// disjoint, exhaustive, and ordered — the segment-ownership contract of
/// [`Communicator::segmented_reduce_scatter_f32`] (pinned by proptests in
/// `tests/collective_conformance.rs`).
pub fn segment_partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "cannot partition into zero segments");
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut begin = 0;
    for idx in 0..parts {
        let n = base + usize::from(idx < extra);
        out.push(begin..begin + n);
        begin += n;
    }
    debug_assert_eq!(begin, len);
    out
}

/// Canonical-ordering variant of [`hierarchical_reduce_sum`]: node leaders
/// gather their node's *raw* contributions (no partial folding) and forward
/// the concatenated block, so the root can fold all `p` buffers in
/// ascending rank order — bit-identical to
/// [`Communicator::reduce_sum_f32_canonical`].
///
/// Relative to the flat canonical reduce this keeps the hierarchical
/// message pattern (inter-node message count = number of nodes) but not
/// its byte savings: canonical ordering requires every raw contribution at
/// the folding site. See `docs/communication.md` for the trade-off.
pub fn hierarchical_reduce_sum_canonical(
    comm: &mut Communicator,
    root: usize,
    buf: &mut [f32],
    ranks_per_node: usize,
) -> Result<(), CommError> {
    assert!(ranks_per_node > 0, "ranks_per_node must be positive");
    assert_eq!(
        root % ranks_per_node,
        0,
        "root {root} must be a node leader (multiple of {ranks_per_node})"
    );
    let p = comm.size();
    let n = buf.len();
    if p == 1 {
        return Ok(());
    }
    // Intra-node gather to the node leader; intra rank order is ascending
    // communicator rank, so each node block is already canonically ordered.
    let node = comm.rank() / ranks_per_node;
    let mut intra = comm.split(node as u64, comm.rank() as i64)?;
    let node_block = intra.gather(0, encode_f32(buf));
    let is_leader = intra.rank() == 0;
    // Inter-node gather of the node blocks; node order is ascending, so
    // the concatenation enumerates ranks 0..p.
    let mut inter = comm.split(u64::from(is_leader), comm.rank() as i64)?;
    if is_leader {
        let root_leader = root / ranks_per_node;
        let block = node_block.expect("node leader gathers its block").concat();
        if let Some(blocks) = inter.gather(root_leader, block) {
            let vals = decode_f32(&blocks.concat())?;
            assert_eq!(vals.len(), p * n, "hierarchical gather length mismatch");
            buf.copy_from_slice(&vals[..n]);
            for r in 1..p {
                for (a, b) in buf.iter_mut().zip(&vals[r * n..(r + 1) * n]) {
                    *a += *b;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn bcast_f32_delivers_root_bits_to_fixed_buffers() {
        for p in [1, 2, 3, 5] {
            let results = World::run(p, move |mut comm| {
                let mut buf = if comm.rank() == 2 % p {
                    vec![1.5f32, -0.0, f32::MIN_POSITIVE / 4.0, 7.25]
                } else {
                    vec![0.0f32; 4]
                };
                comm.bcast_f32(2 % p, &mut buf).unwrap();
                buf
            });
            for r in &results {
                assert_eq!(r[0].to_bits(), 1.5f32.to_bits());
                assert_eq!(
                    r[1].to_bits(),
                    (-0.0f32).to_bits(),
                    "signed zero must survive"
                );
                assert_eq!(r[2].to_bits(), (f32::MIN_POSITIVE / 4.0).to_bits());
                assert_eq!(r[3].to_bits(), 7.25f32.to_bits());
            }
        }
    }

    #[test]
    fn allgather_segments_concatenates_in_rank_order() {
        let counts = [3usize, 1, 0, 2];
        let results = World::run(4, move |mut comm| {
            let me = comm.rank();
            let mine: Vec<f32> = (0..counts[me]).map(|i| (me * 10 + i) as f32).collect();
            comm.allgather_f32_segments(&mine, &counts).unwrap()
        });
        let expected = vec![0.0f32, 1.0, 2.0, 10.0, 30.0, 31.0];
        for r in &results {
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn ping_pong_roundtrip() {
        let results = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send_f32(1, 7, &[1.0, 2.5, -3.0]);
                comm.recv_f32(1, 8)
            } else {
                let got = comm.recv_f32(0, 7);
                comm.send_f32(0, 8, &[got[2], got[1], got[0]]);
                got
            }
        });
        assert_eq!(results[0], vec![-3.0, 2.5, 1.0]);
        assert_eq!(results[1], vec![1.0, 2.5, -3.0]);
    }

    #[test]
    fn checked_frames_round_trip_and_catch_injected_corruption() {
        use scalefbp_faults::{FaultEvent, FaultInjector, FaultPlan};
        use std::time::Duration;
        // Rank 0's first corrupt-channel op flips one seeded bit in the
        // sealed frame; the resend (op 1) goes through clean.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 0,
            channel: Channel::Corrupt,
            op_index: 0,
            kind: FaultKind::BitFlip { seed: 41 },
        }]);
        let (results, _) = World::run_with_faults(2, FaultInjector::new(plan), |mut c| {
            if c.rank() == 0 {
                c.send_f32_checked(1, 7, &[1.0, -2.0, 3.5]).unwrap();
                c.send_f32_checked(1, 7, &[1.0, -2.0, 3.5]).unwrap();
                Ok(vec![])
            } else {
                let first = c.recv_f32_checked_timeout(0, 7, Duration::from_secs(2));
                assert!(
                    matches!(
                        first,
                        Err(CommError::IntegrityFailure {
                            from: 0,
                            tag: 7,
                            ..
                        })
                    ),
                    "corruption not caught: {first:?}"
                );
                c.recv_f32_checked_timeout(0, 7, Duration::from_secs(2))
            }
        });
        assert_eq!(results[1].as_deref(), Ok(&[1.0, -2.0, 3.5][..]));
    }

    #[test]
    fn selective_receive_reorders_tags() {
        let results = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1]);
                comm.send(1, 2, vec![2]);
                vec![0u8]
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                vec![b[0], a[0]]
            }
        });
        assert_eq!(results[1], vec![2, 1]);
    }

    /// Non-overtaking: two messages in the same `(from, tag)` class must be
    /// delivered in send order even when an out-of-order receive removes an
    /// unrelated message that was stashed *before* them. (Regression: the
    /// stash once used `swap_remove`, which moved the later same-class
    /// message in front of the earlier one — the root of a batch-mixing
    /// race in `reduce_sum_f32_canonical` under parallel test load.)
    #[test]
    fn same_class_messages_never_overtake() {
        let results = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![2]);
                comm.send(1, 9, vec![1]);
                comm.send(1, 9, vec![3]);
                comm.send(1, 7, vec![4]);
                vec![0u8]
            } else {
                // Stash fills as [5, 9:[1], 9:[3]] while waiting for tag 7;
                // popping tag 5 from the front must not reorder the two
                // tag-9 messages behind it.
                let d = comm.recv(0, 7);
                let x = comm.recv(0, 5);
                let first = comm.recv(0, 9);
                let second = comm.recv(0, 9);
                vec![d[0], x[0], first[0], second[0]]
            }
        });
        assert_eq!(results[1], vec![4, 2, 1, 3]);
    }

    #[test]
    fn reduce_sums_across_all_ranks() {
        for p in [1, 2, 3, 4, 7, 8] {
            let results = World::run(p, move |mut comm| {
                let r = comm.rank() as f32;
                let mut buf = vec![r, 2.0 * r, 100.0];
                comm.reduce_sum_f32(0, &mut buf);
                buf
            });
            let sum_r: f32 = (0..p).map(|r| r as f32).sum();
            assert_eq!(results[0][0], sum_r, "p={p}");
            assert_eq!(results[0][1], 2.0 * sum_r, "p={p}");
            assert_eq!(results[0][2], 100.0 * p as f32, "p={p}");
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let results = World::run(5, |mut comm| {
            let mut buf = vec![1.0f32];
            comm.reduce_sum_f32(3, &mut buf);
            (comm.rank(), buf[0])
        });
        assert_eq!(results[3].1, 5.0);
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..4 {
            let results = World::run(4, move |mut comm| {
                let mut data = if comm.rank() == root {
                    vec![42u8, root as u8]
                } else {
                    Vec::new()
                };
                comm.bcast(root, &mut data);
                data
            });
            for r in results {
                assert_eq!(r, vec![42, root as u8]);
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = World::run(4, |mut comm| comm.gather(2, vec![comm.rank() as u8]));
        assert!(results[0].is_none());
        let at_root = results[2].clone().unwrap();
        assert_eq!(at_root, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn split_forms_independent_groups() {
        // 6 ranks, 2 groups of 3 (paper's grouping: color = rank / nr).
        let results = World::run(6, |mut comm| {
            let color = (comm.rank() / 3) as u64;
            let mut sub = comm.split(color, comm.rank() as i64).unwrap();
            let mut buf = vec![comm.rank() as f32];
            sub.reduce_sum_f32(0, &mut buf);
            (sub.rank(), sub.size(), buf[0])
        });
        // Group 0 = {0,1,2}: sum 3; group 1 = {3,4,5}: sum 12.
        assert_eq!(results[0], (0, 3, 3.0));
        assert_eq!(results[3], (0, 3, 12.0));
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.0, i % 3, "sub-rank of world rank {i}");
            assert_eq!(r.1, 3);
        }
    }

    #[test]
    fn split_orders_by_key() {
        let results = World::run(3, |mut comm| {
            // Reverse order keys: world rank 2 becomes sub-rank 0.
            let sub = comm.split(0, -(comm.rank() as i64)).unwrap();
            sub.rank()
        });
        assert_eq!(results, vec![2, 1, 0]);
    }

    #[test]
    fn nested_splits_do_not_interfere() {
        let results = World::run(4, |mut comm| {
            let mut a = comm.split((comm.rank() % 2) as u64, 0).unwrap();
            let mut b = comm.split((comm.rank() / 2) as u64, 0).unwrap();
            let mut x = vec![1.0f32];
            let mut y = vec![10.0f32];
            a.reduce_sum_f32(0, &mut x);
            b.reduce_sum_f32(0, &mut y);
            (a.rank() == 0, x[0], b.rank() == 0, y[0])
        });
        for r in &results {
            if r.0 {
                assert_eq!(r.1, 2.0);
            }
            if r.2 {
                assert_eq!(r.3, 20.0);
            }
        }
    }

    #[test]
    fn hierarchical_reduce_equals_flat() {
        for (p, rpn) in [(8, 4), (8, 2), (6, 3), (4, 1), (8, 8)] {
            let results = World::run(p, move |mut comm| {
                let mut buf = vec![comm.rank() as f32 + 1.0, 0.5];
                hierarchical_reduce_sum(&mut comm, 0, &mut buf, rpn).unwrap();
                buf
            });
            let expect: f32 = (0..p).map(|r| r as f32 + 1.0).sum();
            assert_eq!(results[0][0], expect, "p={p} rpn={rpn}");
            assert_eq!(results[0][1], 0.5 * p as f32, "p={p} rpn={rpn}");
        }
    }

    #[test]
    fn barrier_completes_for_many_ranks() {
        let results = World::run(9, |mut comm| {
            for _ in 0..5 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(results.len(), 9);
    }

    /// Deterministic, association-sensitive per-rank test data.
    fn contribution(rank: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 + rank * 101) % 89) as f32 * 0.173 - 7.5 + (rank as f32) * 1e-3)
            .collect()
    }

    /// The canonical left fold in ascending rank order — the ordering
    /// contract all three canonical collectives must reproduce bitwise.
    fn oracle_fold(p: usize, len: usize) -> Vec<f32> {
        let mut acc = contribution(0, len);
        for r in 1..p {
            for (a, b) in acc.iter_mut().zip(&contribution(r, len)) {
                *a += *b;
            }
        }
        acc
    }

    #[test]
    fn canonical_reduce_matches_rank_order_fold() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            for root in [0, p - 1] {
                let len = 23;
                let results = World::run(p, move |mut comm| {
                    let mut buf = contribution(comm.rank(), len);
                    comm.reduce_sum_f32_canonical(root, &mut buf).unwrap();
                    buf
                });
                let expect = oracle_fold(p, len);
                assert_eq!(
                    results[root]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn segmented_reduce_scatter_matches_canonical_fold() {
        for p in [1usize, 2, 3, 5, 8] {
            for (len, chunk) in [(40, 7), (17, 1), (9, 64)] {
                let results = World::run(p, move |mut comm| {
                    let counts: Vec<usize> = segment_partition(len, p)
                        .into_iter()
                        .map(|r| r.len())
                        .collect();
                    let buf = contribution(comm.rank(), len);
                    comm.segmented_reduce_scatter_f32(&buf, &counts, chunk)
                        .unwrap()
                });
                let expect = oracle_fold(p, len);
                let parts = segment_partition(len, p);
                for (rank, seg) in parts.iter().enumerate() {
                    assert_eq!(
                        results[rank]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        expect[seg.clone()]
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        "p={p} len={len} chunk={chunk} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_canonical_matches_rank_order_fold() {
        for (p, rpn) in [(8, 4), (8, 2), (6, 3), (5, 2), (4, 1), (8, 8)] {
            let len = 19;
            let results = World::run(p, move |mut comm| {
                let mut buf = contribution(comm.rank(), len);
                hierarchical_reduce_sum_canonical(&mut comm, 0, &mut buf, rpn).unwrap();
                buf
            });
            let expect = oracle_fold(p, len);
            assert_eq!(
                results[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "p={p} rpn={rpn}"
            );
        }
    }

    #[test]
    fn back_to_back_segmented_calls_do_not_cross_talk() {
        let results = World::run(3, |mut comm| {
            let counts: Vec<usize> = segment_partition(30, 3).iter().map(|r| r.len()).collect();
            let a = contribution(comm.rank(), 30);
            let b: Vec<f32> = a.iter().map(|v| v * 2.0).collect();
            let ra = comm.segmented_reduce_scatter_f32(&a, &counts, 4).unwrap();
            let rb = comm.segmented_reduce_scatter_f32(&b, &counts, 4).unwrap();
            (ra, rb)
        });
        for (rank, (ra, rb)) in results.iter().enumerate() {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!((x * 2.0).to_bits(), y.to_bits(), "rank={rank}");
            }
        }
    }

    #[test]
    fn segmented_reduce_counts_owner_bytes() {
        let results = World::run(4, |mut comm| {
            let counts = vec![8usize, 8, 8, 8];
            let buf = contribution(comm.rank(), 32);
            comm.segmented_reduce_scatter_f32(&buf, &counts, 8).unwrap();
            let snap = comm.metrics().snapshot();
            snap.counter("mpisim.segreduce.owner.bytes", Some(comm.rank()))
                .unwrap_or(0)
        });
        // Ranks 0..2 receive their 8-element (32-byte) finished segment
        // from the tail rank; rank 3 keeps its segment locally.
        assert_eq!(results[0], 32);
        assert_eq!(results[1], 32);
        assert_eq!(results[2], 32);
        assert_eq!(results[3], 0);
    }

    #[test]
    fn segment_partition_is_disjoint_exhaustive_ordered() {
        for (len, parts) in [(0, 3), (1, 4), (10, 3), (16, 4), (33, 16)] {
            let segs = segment_partition(len, parts);
            assert_eq!(segs.len(), parts);
            assert_eq!(segs[0].start, 0);
            assert_eq!(segs[parts - 1].end, len);
            for w in segs.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous at {w:?}");
                assert!(w[0].len() >= w[1].len(), "front-loaded at {w:?}");
            }
            assert!(segs.iter().all(|s| s.len() <= len.div_ceil(parts)));
        }
    }

    #[test]
    fn network_stats_count_bytes() {
        let results = World::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![0u8; 100]);
            } else {
                let _ = comm.recv(0, 0);
            }
            comm.barrier();
            comm.network_stats()
        });
        assert!(results[0].bytes >= 100);
        assert!(results[0].messages >= 1);
    }
}
