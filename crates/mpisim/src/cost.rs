//! α–β cost model for the collectives, used by the timing-mode pipeline.

/// Latency/bandwidth (α–β) communication cost model.
///
/// The constants default to InfiniBand-EDR-class values matching the ABCI
/// interconnect the paper measured with the Intel MPI benchmarks
/// (`TH_reduce` in Section 5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCostModel {
    /// Per-message latency α (seconds).
    pub latency: f64,
    /// Link bandwidth β⁻¹ (bytes/second).
    pub bandwidth: f64,
    /// Local reduction arithmetic throughput (bytes/second summed) —
    /// effectively memory bandwidth on the CPU doing the `+`.
    pub reduce_compute: f64,
}

impl Default for CommCostModel {
    fn default() -> Self {
        CommCostModel {
            latency: 2e-6,
            bandwidth: 10e9, // ~EDR 100 Gb/s ≈ 12.5 GB/s, derated
            reduce_compute: 20e9,
        }
    }
}

impl CommCostModel {
    /// Time for one point-to-point message of `bytes`.
    pub fn p2p_secs(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Binomial-tree reduction of `bytes` over `participants` ranks:
    /// `⌈log₂ p⌉ · (α + bytes·β + bytes·γ)`.
    ///
    /// The key scalability property (Table 2's communication column): cost
    /// grows with the *group* size `N_r`, not the world size.
    pub fn reduce_secs(&self, bytes: u64, participants: usize) -> f64 {
        if participants <= 1 {
            return 0.0;
        }
        let rounds = participants.next_power_of_two().trailing_zeros() as f64;
        rounds * (self.latency + bytes as f64 / self.bandwidth + bytes as f64 / self.reduce_compute)
    }

    /// The paper's hierarchical variant: intra-node rounds at memory-like
    /// bandwidth (`intra_boost`× the link), then leader rounds on the link.
    pub fn hierarchical_reduce_secs(
        &self,
        bytes: u64,
        participants: usize,
        ranks_per_node: usize,
        intra_boost: f64,
    ) -> f64 {
        assert!(ranks_per_node > 0);
        if participants <= 1 {
            return 0.0;
        }
        let intra_p = ranks_per_node.min(participants);
        let intra = CommCostModel {
            bandwidth: self.bandwidth * intra_boost,
            ..*self
        }
        .reduce_secs(bytes, intra_p);
        let leaders = participants.div_ceil(ranks_per_node);
        intra + self.reduce_secs(bytes, leaders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_has_latency_floor() {
        let m = CommCostModel::default();
        assert!(m.p2p_secs(0) == m.latency);
        assert!(m.p2p_secs(1 << 30) > 0.1);
    }

    #[test]
    fn reduce_is_logarithmic_in_group_size() {
        let m = CommCostModel::default();
        let b = 1 << 20;
        let t2 = m.reduce_secs(b, 2);
        let t4 = m.reduce_secs(b, 4);
        let t16 = m.reduce_secs(b, 16);
        assert!((t4 - 2.0 * t2).abs() < 1e-12);
        assert!((t16 - 4.0 * t2).abs() < 1e-12);
    }

    #[test]
    fn segmented_beats_global_reduce() {
        // The paper replaces a world-wide collective by per-group ones:
        // reducing over N_r = 8 must beat reducing over 1024 ranks.
        let m = CommCostModel::default();
        let bytes = 256 << 20;
        assert!(m.reduce_secs(bytes, 8) < m.reduce_secs(bytes, 1024) / 3.0);
    }

    #[test]
    fn single_rank_reduce_is_free() {
        let m = CommCostModel::default();
        assert_eq!(m.reduce_secs(123, 1), 0.0);
        assert_eq!(m.reduce_secs(123, 0), 0.0);
    }

    #[test]
    fn hierarchical_beats_flat_when_intranode_is_fast() {
        let m = CommCostModel::default();
        let bytes = 64 << 20;
        let flat = m.reduce_secs(bytes, 16);
        let hier = m.hierarchical_reduce_secs(bytes, 16, 4, 8.0);
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn hierarchical_degenerates_to_flat_for_one_rank_per_node() {
        let m = CommCostModel::default();
        let bytes = 1 << 20;
        let flat = m.reduce_secs(bytes, 8);
        let hier = m.hierarchical_reduce_secs(bytes, 8, 1, 8.0);
        assert!((hier - flat).abs() < 1e-12);
    }
}
