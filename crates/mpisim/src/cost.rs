//! α–β cost model for the collectives, used by the timing-mode pipeline.

/// Latency/bandwidth (α–β) communication cost model.
///
/// The constants default to InfiniBand-EDR-class values matching the ABCI
/// interconnect the paper measured with the Intel MPI benchmarks
/// (`TH_reduce` in Section 5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCostModel {
    /// Per-message latency α (seconds).
    pub latency: f64,
    /// Link bandwidth β⁻¹ (bytes/second).
    pub bandwidth: f64,
    /// Local reduction arithmetic throughput (bytes/second summed) —
    /// effectively memory bandwidth on the CPU doing the `+`.
    pub reduce_compute: f64,
}

impl Default for CommCostModel {
    fn default() -> Self {
        CommCostModel {
            latency: 2e-6,
            bandwidth: 10e9, // ~EDR 100 Gb/s ≈ 12.5 GB/s, derated
            reduce_compute: 20e9,
        }
    }
}

impl CommCostModel {
    /// Time for one point-to-point message of `bytes`.
    pub fn p2p_secs(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Binomial-tree reduction of `bytes` over `participants` ranks:
    /// `⌈log₂ p⌉ · (α + bytes·β + bytes·γ)`.
    ///
    /// The key scalability property (Table 2's communication column): cost
    /// grows with the *group* size `N_r`, not the world size.
    pub fn reduce_secs(&self, bytes: u64, participants: usize) -> f64 {
        if participants <= 1 {
            return 0.0;
        }
        let rounds = participants.next_power_of_two().trailing_zeros() as f64;
        rounds * (self.latency + bytes as f64 / self.bandwidth + bytes as f64 / self.reduce_compute)
    }

    /// The paper's hierarchical variant: intra-node rounds at memory-like
    /// bandwidth (`intra_boost`× the link), then leader rounds on the link.
    pub fn hierarchical_reduce_secs(
        &self,
        bytes: u64,
        participants: usize,
        ranks_per_node: usize,
        intra_boost: f64,
    ) -> f64 {
        assert!(ranks_per_node > 0);
        if participants <= 1 {
            return 0.0;
        }
        let intra_p = ranks_per_node.min(participants);
        let intra = CommCostModel {
            bandwidth: self.bandwidth * intra_boost,
            ..*self
        }
        .reduce_secs(bytes, intra_p);
        let leaders = participants.div_ceil(ranks_per_node);
        intra + self.reduce_secs(bytes, leaders)
    }

    /// Flat canonical (dense) reduction: the root serially ingests and
    /// folds `p-1` whole buffers, so the cost — unlike the tree's
    /// `⌈log₂ p⌉` rounds — is linear in the rank count:
    /// `(p-1) · (α + bytes·β + bytes·γ)`.
    ///
    /// This is the charge the tree-based [`reduce_secs`](Self::reduce_secs)
    /// omits: a tree spreads the folding work, but a dense reduce
    /// concentrates `(p-1)·bytes` of ingress on the root (see
    /// [`dense_root_ingress_bytes`](Self::dense_root_ingress_bytes)).
    pub fn dense_reduce_secs(&self, bytes: u64, participants: usize) -> f64 {
        if participants <= 1 {
            return 0.0;
        }
        (participants - 1) as f64
            * (self.latency + bytes as f64 / self.bandwidth + bytes as f64 / self.reduce_compute)
    }

    /// Bytes the root of a dense reduce receives: `(p-1) · bytes` — i.e.
    /// `(p-1)/p` of the total contributed volume (`p · bytes`). Grows
    /// linearly in `p`; the quantity the paper's segmented collective
    /// eliminates.
    pub fn dense_root_ingress_bytes(bytes: u64, participants: usize) -> u64 {
        (participants.max(1) as u64 - 1) * bytes
    }

    /// Chain-pipelined segmented reduce-scatter of `bytes` over
    /// `participants` ranks with `chunk_bytes`-sized messages.
    ///
    /// The chain has `p-1` forwarding stages and `⌈bytes/chunk⌉` chunks
    /// streaming through them, so the makespan is a pipeline fill plus a
    /// steady state: `(C + p - 2) · (α + chunk·β + chunk·γ)`. For
    /// `C ≫ p` this approaches `bytes·(β + γ)` — independent of `p`, the
    /// flat communication column of Table 2 — because communication of one
    /// chunk overlaps accumulation of the next.
    pub fn segmented_reduce_secs(&self, bytes: u64, participants: usize, chunk_bytes: u64) -> f64 {
        assert!(chunk_bytes > 0, "chunk_bytes must be positive");
        if participants <= 1 || bytes == 0 {
            return 0.0;
        }
        let chunks = bytes.div_ceil(chunk_bytes);
        let chunk = chunk_bytes.min(bytes);
        let step =
            self.latency + chunk as f64 / self.bandwidth + chunk as f64 / self.reduce_compute;
        (chunks + participants as u64 - 2) as f64 * step
    }

    /// Finished-result bytes each owner receives from a segmented
    /// reduce-scatter: its own `⌈bytes/p⌉` segment — the `Nz/p` per-rank
    /// traffic of the paper's Fig. 9/10.
    pub fn segmented_owner_recv_bytes(bytes: u64, participants: usize) -> u64 {
        bytes.div_ceil(participants.max(1) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_has_latency_floor() {
        let m = CommCostModel::default();
        assert!(m.p2p_secs(0) == m.latency);
        assert!(m.p2p_secs(1 << 30) > 0.1);
    }

    #[test]
    fn reduce_is_logarithmic_in_group_size() {
        let m = CommCostModel::default();
        let b = 1 << 20;
        let t2 = m.reduce_secs(b, 2);
        let t4 = m.reduce_secs(b, 4);
        let t16 = m.reduce_secs(b, 16);
        assert!((t4 - 2.0 * t2).abs() < 1e-12);
        assert!((t16 - 4.0 * t2).abs() < 1e-12);
    }

    #[test]
    fn segmented_beats_global_reduce() {
        // The paper replaces a world-wide collective by per-group ones:
        // reducing over N_r = 8 must beat reducing over 1024 ranks.
        let m = CommCostModel::default();
        let bytes = 256 << 20;
        assert!(m.reduce_secs(bytes, 8) < m.reduce_secs(bytes, 1024) / 3.0);
    }

    #[test]
    fn single_rank_reduce_is_free() {
        let m = CommCostModel::default();
        assert_eq!(m.reduce_secs(123, 1), 0.0);
        assert_eq!(m.reduce_secs(123, 0), 0.0);
    }

    #[test]
    fn hierarchical_beats_flat_when_intranode_is_fast() {
        let m = CommCostModel::default();
        let bytes = 64 << 20;
        let flat = m.reduce_secs(bytes, 16);
        let hier = m.hierarchical_reduce_secs(bytes, 16, 4, 8.0);
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn hierarchical_degenerates_to_flat_for_one_rank_per_node() {
        let m = CommCostModel::default();
        let bytes = 1 << 20;
        let flat = m.reduce_secs(bytes, 8);
        let hier = m.hierarchical_reduce_secs(bytes, 8, 1, 8.0);
        assert!((hier - flat).abs() < 1e-12);
    }

    /// Regression for the dense/hierarchical cost asymmetry: the tree
    /// charge under-counts what a dense reduce concentrates on the root.
    /// Modelled root ingress must equal `(p-1)/p` of the total contributed
    /// volume (`p` ranks × `bytes` each), exactly.
    #[test]
    fn dense_root_ingress_matches_contributed_share() {
        let per_rank: u64 = 1 << 20;
        for p in [2usize, 8, 64, 1024] {
            let total = per_rank * p as u64;
            let ingress = CommCostModel::dense_root_ingress_bytes(per_rank, p);
            assert_eq!(ingress, total * (p as u64 - 1) / p as u64, "p={p}");
            assert_eq!(ingress, (p as u64 - 1) * per_rank, "p={p}");
        }
        // The old tree charge implied only ⌈log₂ p⌉·bytes through the
        // root's link — at p = 1024 that under-charges by two orders of
        // magnitude.
        let tree_rounds = 1024usize.next_power_of_two().trailing_zeros() as u64;
        assert!(
            CommCostModel::dense_root_ingress_bytes(per_rank, 1024) > 100 * tree_rounds * per_rank
        );
    }

    #[test]
    fn dense_reduce_is_linear_in_p() {
        let m = CommCostModel::default();
        let b = 1 << 20;
        let t2 = m.dense_reduce_secs(b, 2);
        assert!((m.dense_reduce_secs(b, 5) - 4.0 * t2).abs() < 1e-12);
        assert!((m.dense_reduce_secs(b, 1025) - 1024.0 * t2).abs() < 1e-9);
        assert_eq!(m.dense_reduce_secs(b, 1), 0.0);
    }

    #[test]
    fn segmented_reduce_is_nearly_flat_in_p() {
        let m = CommCostModel::default();
        let bytes = 256 << 20;
        let chunk = 1 << 20;
        let t8 = m.segmented_reduce_secs(bytes, 8, chunk);
        let t1024 = m.segmented_reduce_secs(bytes, 1024, chunk);
        // 1016 extra pipeline-fill steps on 256 chunks: well under 6× —
        // versus 128× for the dense reduce over the same span.
        assert!(t1024 < 6.0 * t8, "t8={t8} t1024={t1024}");
        let dense_ratio = m.dense_reduce_secs(bytes, 1024) / m.dense_reduce_secs(bytes, 8);
        assert!(dense_ratio > 100.0);
    }

    #[test]
    fn segmented_beats_dense_at_scale() {
        let m = CommCostModel::default();
        let bytes = 64 << 20;
        assert!(
            m.segmented_reduce_secs(bytes, 1024, 1 << 20) < m.dense_reduce_secs(bytes, 1024) / 10.0
        );
    }

    #[test]
    fn segmented_owner_share_is_volume_over_p() {
        assert_eq!(CommCostModel::segmented_owner_recv_bytes(100, 8), 13);
        assert_eq!(CommCostModel::segmented_owner_recv_bytes(1024, 1024), 1);
        assert_eq!(CommCostModel::segmented_owner_recv_bytes(7, 1), 7);
    }
}
