//! Launching rank threads.

use std::sync::Arc;

use scalefbp_faults::{FaultInject, NoFaults};
use scalefbp_obs::MetricsRegistry;

use crate::{Communicator, NetworkStats};

/// The launcher: spawns one OS thread per rank, each receiving its
/// [`Communicator`] — the `mpirun` of the simulator.
pub struct World;

impl World {
    /// Runs `body` on `size` rank threads and returns their results in rank
    /// order. Panics in any rank propagate after all threads have been
    /// joined (so no rank output is silently lost).
    pub fn run<T, F>(size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        World::run_with_faults(size, Arc::new(NoFaults), body).0
    }

    /// [`run`](Self::run) plus the world's final [`NetworkStats`],
    /// snapshotted *after* every rank has been joined — unlike a
    /// per-rank `network_stats()` call, the returned counters do not
    /// depend on which rank finished first.
    pub fn run_with_stats<T, F>(size: usize, body: F) -> (Vec<T>, NetworkStats)
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        World::run_with_faults(size, Arc::new(NoFaults), body)
    }

    /// Runs the world under a fault injector: every send and delivered
    /// receive of every rank consults `injector`. Returns the rank
    /// results and the post-join [`NetworkStats`].
    pub fn run_with_faults<T, F>(
        size: usize,
        injector: Arc<dyn FaultInject>,
        body: F,
    ) -> (Vec<T>, NetworkStats)
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        World::run_with_observability(size, injector, MetricsRegistry::new(), body)
    }

    /// [`run_with_faults`](Self::run_with_faults) with the world's
    /// per-rank communication metrics recorded into a caller-supplied
    /// registry, so a distributed run's traffic lands in the same
    /// snapshot as its device and pipeline metrics.
    pub fn run_with_observability<T, F>(
        size: usize,
        injector: Arc<dyn FaultInject>,
        metrics: MetricsRegistry,
        body: F,
    ) -> (Vec<T>, NetworkStats)
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        assert!(size > 0, "world size must be positive");
        let (comms, network) = Communicator::world_with_observability(size, injector, metrics);
        let body = &body;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| scope.spawn(move || body(comm)))
                .collect();
            let mut results = Vec::with_capacity(size);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(v) => results.push(v),
                    Err(e) => panic = Some(e),
                }
            }
            if let Some(e) = panic {
                std::panic::resume_unwind(e);
            }
            results
        });
        let stats = network.stats();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = World::run(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |mut comm| {
            let mut buf = vec![3.0f32];
            comm.reduce_sum_f32(0, &mut buf);
            comm.barrier();
            buf[0]
        });
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "rank 2 says no")]
    fn rank_panics_propagate() {
        let _ = World::run(4, |comm| {
            if comm.rank() == 2 {
                panic!("rank 2 says no");
            }
            comm.rank()
        });
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_size_rejected() {
        let _ = World::run(0, |_comm| ());
    }
}
