//! In-process MPI substitute.
//!
//! The paper's distributed framework uses MPI for exactly four things:
//! point-to-point transfers, `MPI_Comm_split` to form the `N_g` groups of
//! `N_r` ranks (Section 4.4.1), a *segmented* `MPI_Reduce` over each group
//! (Section 4.4.2), and a hierarchical node-leader reduction to cut
//! inter-node traffic. No MPI runtime exists in this environment, so this
//! crate reimplements that surface with threads and crossbeam channels:
//!
//! * [`World::run`] — launches `size` rank threads, hands each a
//!   [`Communicator`], joins them and returns their results in rank order.
//! * [`Communicator`] — `rank`/`size`, tagged `send`/`recv` with selective
//!   receive, `barrier`, `bcast`, `gather`, binomial-tree
//!   [`Communicator::reduce_sum_f32`], and [`Communicator::split`]
//!   (the `MPI_Comm_split` of the paper, giving every group its own
//!   context so collectives never cross groups).
//! * [`hierarchical_reduce_sum`] — the paper's two-level reduction: ranks
//!   sharing a node first reduce to a node leader, then leaders reduce to
//!   the root (Section 4.4.2).
//! * [`Communicator::segmented_reduce_scatter_f32`] — the paper's headline
//!   segmented `MPI_Reduce`: a chunk-pipelined reduce-scatter delivering
//!   each rank only its own `Nz` segment, with a canonical rank-ordered
//!   summation shared by [`Communicator::reduce_sum_f32_canonical`] and
//!   [`hierarchical_reduce_sum_canonical`] so all three are bit-identical
//!   (the contract `docs/communication.md` documents and
//!   `tests/collective_conformance.rs` pins).
//! * [`ReduceMode`] — selects among the three algorithms on the driver
//!   configs and the CLI (`--reduce-mode`).
//! * [`CommCostModel`] — an α–β (latency/bandwidth) model of collective
//!   cost used by the discrete-event pipeline; the tree reduce costs
//!   `⌈log₂ N_r⌉` rounds, the dense reduce `p-1` serial ingests, and the
//!   segmented reduce-scatter a chunk pipeline that approaches
//!   `bytes·(β+γ)` independent of `p` — the Table 2 communication column.
//!
//! Every byte through the network is counted ([`NetworkStats`], plus the
//! `mpisim.segreduce.*` per-rank counters) so the Table 2 ablation can
//! compare communication volumes across decomposition schemes without
//! timing anything.

mod comm;
mod cost;
mod mode;
mod world;

pub use comm::{CommError, Communicator, NetworkStats};
pub use cost::CommCostModel;
pub use mode::ReduceMode;
pub use world::World;

pub use comm::{hierarchical_reduce_sum, hierarchical_reduce_sum_canonical, segment_partition};
