//! The reusable per-geometry filtering plan.

use rayon::prelude::*;
use scalefbp_fft::{Complex, RealFftPlan};
use scalefbp_geom::{CbctGeometry, ProjectionStack};

use crate::{FilterWindow, RampKernel};

/// Reusable buffers for the fused filtering path
/// ([`FilterPipeline::filter_row_fused`]): one padded time-domain row, one
/// half-spectrum and the FFT scratch, allocated once and recycled across
/// every row a thread filters. The two-pass path allocates all of these
/// afresh per row.
#[derive(Clone, Debug)]
pub struct FilterScratch {
    /// Zero-padded weighted row (time domain). Only the first `nu` slots
    /// are ever written; the tail stays zero across reuses.
    padded: Vec<f64>,
    /// Half-spectrum of the padded row.
    spec: Vec<Complex>,
    /// Packed half-length FFT working buffer.
    fft: Vec<Complex>,
    /// Filtered row before the f32 store.
    time: Vec<f64>,
}

/// A reusable filtering plan for one acquisition geometry.
///
/// Applies, to every detector row (Equation 2):
/// 1. the cosine pre-weight `D_sd/√(D(u,v)² + D_sd²)`,
/// 2. the windowed ramp convolution, carried out on the *virtual detector*
///    through the rotation axis (sample spacing `Δ_u·D_so/D_sd`), which is
///    the coordinate system in which the fan-beam inversion formula holds,
/// 3. the discretisation scale `Δa` (convolution step) and the full-scan
///    redundancy factor `1/2`.
///
/// The filtered rows are then ready for back-projection with the
/// `Δφ·D_so²/z²` weight.
#[derive(Clone, Debug)]
pub struct FilterPipeline {
    geom: CbctGeometry,
    kernel: RampKernel,
    rfft: RealFftPlan,
    /// Per-u lateral distances squared `(Δ_u(u − c_u))²`, shared by every
    /// row's weight evaluation.
    du2: Vec<f64>,
    /// Post-convolution scale: `Δa · 1/2`.
    scale: f64,
    /// Frequency response with `scale` folded in — the fused path applies
    /// the discretisation scale as `spectrum_len` multiplies here instead
    /// of a second full pass over every output sample.
    response_scaled: Vec<f64>,
}

impl FilterPipeline {
    /// Builds the plan.
    pub fn new(geom: &CbctGeometry, window: FilterWindow) -> Self {
        // Virtual-detector sample spacing: the detector demagnified onto the
        // rotation axis.
        let tau = geom.du * geom.dso / geom.dsd;
        let kernel = RampKernel::new(geom.nu, tau, window);
        let rfft = RealFftPlan::new(kernel.padded_len());
        let cu = 0.5 * (geom.nu as f64 - 1.0) + geom.sigma_u;
        let du2 = (0..geom.nu)
            .map(|u| {
                let d = geom.du * (u as f64 - cu);
                d * d
            })
            .collect();
        let scale = tau * 0.5;
        let response_scaled = kernel.response().iter().map(|h| h * scale).collect();
        FilterPipeline {
            geom: geom.clone(),
            kernel,
            rfft,
            du2,
            scale,
            response_scaled,
        }
    }

    /// The geometry the plan was built for.
    #[inline]
    pub fn geometry(&self) -> &CbctGeometry {
        &self.geom
    }

    /// Filters one detector row in place. `v` is the **global** detector row
    /// index (used for the cosine weight's vertical term).
    pub fn filter_row(&self, row: &mut [f32], v: usize) {
        assert_eq!(row.len(), self.geom.nu, "row length mismatch");
        let g = &self.geom;
        let cv = 0.5 * (g.nv as f64 - 1.0) + g.sigma_v;
        let dvv = g.dv * (v as f64 - cv);
        let dv2 = dvv * dvv;
        let dsd2 = g.dsd * g.dsd;

        let mut padded = vec![0.0f64; self.kernel.padded_len()];
        for (u, (&px, slot)) in row.iter().zip(padded.iter_mut()).enumerate() {
            let w = g.dsd / (self.du2[u] + dv2 + dsd2).sqrt();
            *slot = px as f64 * w;
        }

        let mut spec = self.rfft.forward(&padded);
        for (z, &h) in spec.iter_mut().zip(self.kernel.response()) {
            *z = z.scale(h);
        }
        let out = self.rfft.inverse(&spec);
        for (px, &val) in row.iter_mut().zip(&out) {
            *px = (val * self.scale) as f32;
        }
    }

    /// Allocates the reusable buffers for the fused path.
    pub fn make_scratch(&self) -> FilterScratch {
        FilterScratch {
            padded: vec![0.0f64; self.kernel.padded_len()],
            spec: vec![Complex::ZERO; self.rfft.spectrum_len()],
            fft: vec![Complex::ZERO; self.rfft.scratch_len()],
            time: vec![0.0f64; self.kernel.padded_len()],
        }
    }

    /// The fused-pass variant of [`filter_row`](Self::filter_row): the same
    /// cosine weight + windowed ramp, but
    ///
    /// * the discretisation scale is folded into the frequency response
    ///   (`spectrum_len` multiplies instead of the two-pass version's extra
    ///   full pass over every output sample), and
    /// * all intermediates live in the caller's [`FilterScratch`], so the
    ///   steady state performs **zero** heap allocations per row (the
    ///   two-pass path performs five).
    ///
    /// The result differs from `filter_row` only by f64 rounding in the
    /// scale application — within a few ULP after the f32 store (pinned by
    /// tests and a workspace proptest).
    pub fn filter_row_fused(&self, row: &mut [f32], v: usize, scratch: &mut FilterScratch) {
        assert_eq!(row.len(), self.geom.nu, "row length mismatch");
        let g = &self.geom;
        let cv = 0.5 * (g.nv as f64 - 1.0) + g.sigma_v;
        let dvv = g.dv * (v as f64 - cv);
        let dv2 = dvv * dvv;
        let dsd2 = g.dsd * g.dsd;

        // Pack + cosine weight. Only the first `nu` slots are written; the
        // padded tail is zeroed at scratch construction and never touched.
        for (u, (&px, slot)) in row.iter().zip(scratch.padded.iter_mut()).enumerate() {
            let w = g.dsd / (self.du2[u] + dv2 + dsd2).sqrt();
            *slot = px as f64 * w;
        }

        self.rfft
            .forward_into(&scratch.padded, &mut scratch.spec, &mut scratch.fft);
        for (z, &h) in scratch.spec.iter_mut().zip(&self.response_scaled) {
            *z = z.scale(h);
        }
        self.rfft
            .inverse_into(&scratch.spec, &mut scratch.time, &mut scratch.fft);
        for (px, &val) in row.iter_mut().zip(&scratch.time) {
            *px = val as f32;
        }
    }

    /// Filters a whole (possibly partial) projection stack in place,
    /// parallelised over detector rows. Respects the stack's `v_offset` so
    /// partial stacks weight with their global row index.
    pub fn filter_stack(&self, stack: &mut ProjectionStack) {
        assert_eq!(stack.nu(), self.geom.nu, "stack width mismatch");
        let np = stack.np();
        let nu = stack.nu();
        let v_offset = stack.v_offset();
        let row_stride = np * nu;
        stack
            .data_mut()
            .par_chunks_mut(row_stride)
            .enumerate()
            .for_each(|(v_local, block)| {
                let v = v_offset + v_local;
                for s in 0..np {
                    self.filter_row(&mut block[s * nu..(s + 1) * nu], v);
                }
            });
    }

    /// [`filter_stack`](Self::filter_stack) through the fused per-row pass:
    /// one [`FilterScratch`] per detector-row block, recycled across the
    /// block's `N_p` rows.
    pub fn filter_stack_fused(&self, stack: &mut ProjectionStack) {
        assert_eq!(stack.nu(), self.geom.nu, "stack width mismatch");
        let np = stack.np();
        let nu = stack.nu();
        let v_offset = stack.v_offset();
        let row_stride = np * nu;
        stack
            .data_mut()
            .par_chunks_mut(row_stride)
            .enumerate()
            .for_each(|(v_local, block)| {
                let v = v_offset + v_local;
                let mut scratch = self.make_scratch();
                for s in 0..np {
                    self.filter_row_fused(&mut block[s * nu..(s + 1) * nu], v, &mut scratch);
                }
            });
    }

    /// The back-projection scale that completes the FDK normalisation when
    /// combined with the kernel's `1/z²` weight: `Δφ·D_so²`.
    pub fn backprojection_scale(&self) -> f64 {
        2.0 * std::f64::consts::PI / self.geom.np as f64 * self.geom.dso * self.geom.dso
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(32, 16, 64, 48)
    }

    #[test]
    fn constant_rows_filter_to_near_zero() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::RamLak);
        let mut row = vec![1.0f32; g.nu];
        f.filter_row(&mut row, g.nv / 2);
        let mid = row[g.nu / 2].abs();
        assert!(mid < 0.05, "mid residual {mid}");
    }

    #[test]
    fn filter_preserves_row_length_and_is_deterministic() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::Hann);
        let make = || -> Vec<f32> { (0..g.nu).map(|u| (u as f32 * 0.1).sin()).collect() };
        let mut a = make();
        let mut b = make();
        f.filter_row(&mut a, 3);
        f.filter_row(&mut b, 3);
        assert_eq!(a.len(), g.nu);
        assert_eq!(a, b);
    }

    #[test]
    fn filter_stack_matches_row_by_row() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::SheppLogan);
        let mut stack = ProjectionStack::zeros(g.nv, g.np, g.nu);
        for v in 0..g.nv {
            for s in 0..g.np {
                for u in 0..g.nu {
                    *stack.get_mut(v, s, u) = ((v + 2 * s + 3 * u) % 17) as f32 * 0.25;
                }
            }
        }
        let mut by_stack = stack.clone();
        f.filter_stack(&mut by_stack);
        for v in [0, g.nv / 2, g.nv - 1] {
            for s in [0, g.np - 1] {
                let mut row: Vec<f32> = stack.row(v, s).to_vec();
                f.filter_row(&mut row, v);
                assert_eq!(by_stack.row(v, s), &row[..], "v={v} s={s}");
            }
        }
    }

    #[test]
    fn partial_stack_uses_global_row_for_weighting() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::RamLak);
        let mut full = ProjectionStack::zeros(g.nv, g.np, g.nu);
        for px in full.data_mut().iter_mut().enumerate() {
            *px.1 = ((px.0 * 31 % 101) as f32) * 0.01;
        }
        let mut window = full.extract_window(10, 20, 0, g.np);
        let mut full_f = full.clone();
        f.filter_stack(&mut full_f);
        f.filter_stack(&mut window);
        for v in 0..10 {
            for s in [0, 7] {
                assert_eq!(window.row(v, s), full_f.row(v + 10, s), "v={v} s={s}");
            }
        }
    }

    #[test]
    fn hann_window_attenuates_more_than_ramlak() {
        let g = geom();
        let ram = FilterPipeline::new(&g, FilterWindow::RamLak);
        let hann = FilterPipeline::new(&g, FilterWindow::Hann);
        // An alternating (Nyquist) row: Hann must suppress it far more.
        let make = || -> Vec<f32> {
            (0..g.nu)
                .map(|u| if u % 2 == 0 { 1.0 } else { -1.0 })
                .collect()
        };
        let mut a = make();
        let mut b = make();
        ram.filter_row(&mut a, g.nv / 2);
        hann.filter_row(&mut b, g.nv / 2);
        let energy = |r: &[f32]| -> f32 { r.iter().map(|x| x * x).sum() };
        assert!(
            energy(&b) < energy(&a) * 0.05,
            "{} vs {}",
            energy(&b),
            energy(&a)
        );
    }

    #[test]
    fn backprojection_scale_formula() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::RamLak);
        let expect = 2.0 * std::f64::consts::PI / g.np as f64 * g.dso * g.dso;
        assert!((f.backprojection_scale() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn wrong_row_length_panics() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::RamLak);
        let mut row = vec![0.0f32; g.nu + 1];
        f.filter_row(&mut row, 0);
    }

    /// Distance in units-in-the-last-place between two finite f32s, using
    /// the monotone ordered-integer mapping.
    fn ulp_distance(a: f32, b: f32) -> u32 {
        fn ordered(x: f32) -> i64 {
            let bits = x.to_bits() as i32;
            (if bits < 0 { i32::MIN - bits } else { bits }) as i64
        }
        (ordered(a) - ordered(b)).unsigned_abs() as u32
    }

    #[test]
    fn fused_row_matches_two_pass_within_ulps() {
        let g = geom();
        for window in [FilterWindow::RamLak, FilterWindow::SheppLogan] {
            let f = FilterPipeline::new(&g, window);
            let mut scratch = f.make_scratch();
            for v in [0, g.nv / 2, g.nv - 1] {
                let base: Vec<f32> = (0..g.nu)
                    .map(|u| ((u * 13 + v * 7) % 23) as f32 * 0.17 - 1.5)
                    .collect();
                let mut two_pass = base.clone();
                let mut fused = base.clone();
                f.filter_row(&mut two_pass, v);
                f.filter_row_fused(&mut fused, v, &mut scratch);
                for (u, (&a, &b)) in two_pass.iter().zip(&fused).enumerate() {
                    assert!(a.is_finite() && b.is_finite(), "v={v} u={u}");
                    // Folding the scale into the response reorders one f64
                    // multiply; after the f32 store the paths agree to a
                    // couple of ULP.
                    assert!(
                        ulp_distance(a, b) <= 4,
                        "v={v} u={u}: two-pass {a} vs fused {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_stack_matches_fused_rows_with_global_offsets() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::Hann);
        let mut full = ProjectionStack::zeros(g.nv, g.np, g.nu);
        for (i, px) in full.data_mut().iter_mut().enumerate() {
            *px = ((i * 29 % 97) as f32) * 0.02 - 0.5;
        }
        let mut window = full.extract_window(5, 13, 0, g.np);
        f.filter_stack_fused(&mut window);
        let mut scratch = f.make_scratch();
        for v_local in 0..8 {
            for s in [0, g.np / 2, g.np - 1] {
                let mut row: Vec<f32> = full.row(v_local + 5, s).to_vec();
                f.filter_row_fused(&mut row, v_local + 5, &mut scratch);
                assert_eq!(window.row(v_local, s), &row[..], "v={v_local} s={s}");
            }
        }
    }

    #[test]
    fn fused_scratch_reuse_leaves_no_residue() {
        let g = geom();
        let f = FilterPipeline::new(&g, FilterWindow::RamLak);
        let make =
            |amp: f32| -> Vec<f32> { (0..g.nu).map(|u| (u as f32 * 0.31).sin() * amp).collect() };
        // Filter a loud row first, then a quiet one through the same
        // scratch; the quiet result must be bitwise what a fresh scratch
        // produces.
        let mut scratch = f.make_scratch();
        let mut loud = make(1e4);
        f.filter_row_fused(&mut loud, 2, &mut scratch);
        let mut reused = make(1e-3);
        f.filter_row_fused(&mut reused, 9, &mut scratch);
        let mut fresh = make(1e-3);
        f.filter_row_fused(&mut fresh, 9, &mut f.make_scratch());
        assert_eq!(reused, fresh);
    }
}
