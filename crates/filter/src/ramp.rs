//! The discrete band-limited ramp filter and its apodisation windows.

use scalefbp_fft::{next_pow2, Complex, FftPlan};

/// Apodisation window applied to the ramp's frequency response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FilterWindow {
    /// Pure band-limited ramp (no apodisation).
    #[default]
    RamLak,
    /// `sinc` window — the classic Shepp-Logan filter.
    SheppLogan,
    /// Half-cosine window.
    Cosine,
    /// Hamming window (`0.54 + 0.46·cos`).
    Hamming,
    /// Hann window (`0.5 + 0.5·cos`).
    Hann,
}

impl FilterWindow {
    /// Window gain at normalised frequency `f ∈ [0, 1]` (1 = Nyquist).
    pub fn gain(&self, f: f64) -> f64 {
        debug_assert!((0.0..=1.0 + 1e-12).contains(&f));
        let x = std::f64::consts::PI * f;
        match self {
            FilterWindow::RamLak => 1.0,
            FilterWindow::SheppLogan => {
                if f == 0.0 {
                    1.0
                } else {
                    (x / 2.0).sin() / (x / 2.0)
                }
            }
            FilterWindow::Cosine => (x / 2.0).cos(),
            FilterWindow::Hamming => 0.54 + 0.46 * x.cos(),
            FilterWindow::Hann => 0.5 + 0.5 * x.cos(),
        }
    }
}

/// The discrete ramp kernel of Kak & Slaney for detector sample spacing
/// `tau` (mm), together with its zero-padded frequency response.
///
/// Spatial taps: `h(0) = 1/(4τ²)`, `h(n) = −1/(πnτ)²` for odd `n`, `0` for
/// even `n`. The frequency response is obtained by transforming the
/// wrap-around-ordered taps, which avoids the DC bias of sampling `|f|`
/// directly.
#[derive(Clone, Debug)]
pub struct RampKernel {
    tau: f64,
    padded_len: usize,
    /// Real frequency response (windowed), one value per rfft bin
    /// `0..=padded_len/2`.
    response: Vec<f64>,
}

impl RampKernel {
    /// Builds the kernel for rows of `row_len` samples at spacing `tau`,
    /// padded to `next_pow2(2·row_len)` to make the circular convolution
    /// linear.
    pub fn new(row_len: usize, tau: f64, window: FilterWindow) -> Self {
        assert!(row_len > 0, "row length must be positive");
        assert!(tau > 0.0, "sample spacing must be positive");
        let padded_len = next_pow2(2 * row_len);
        let half = padded_len / 2;

        // Spatial taps in wrap-around order.
        let mut taps = vec![Complex::ZERO; padded_len];
        taps[0] = Complex::from_real(1.0 / (4.0 * tau * tau));
        for n in (1..=half).step_by(2) {
            let v = -1.0 / (std::f64::consts::PI * n as f64 * tau).powi(2);
            taps[n] = Complex::from_real(v);
            taps[padded_len - n] = Complex::from_real(v);
        }

        let plan = FftPlan::new(padded_len);
        plan.forward(&mut taps);

        let response = (0..=half)
            .map(|k| {
                let f = k as f64 / half as f64;
                taps[k].re * window.gain(f)
            })
            .collect();

        RampKernel {
            tau,
            padded_len,
            response,
        }
    }

    /// Detector sample spacing the kernel was built for.
    #[inline]
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// FFT length used for row filtering.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.padded_len
    }

    /// The windowed real frequency response (rfft bins).
    #[inline]
    pub fn response(&self) -> &[f64] {
        &self.response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_fft::RealFftPlan;

    #[test]
    fn padded_length_is_linear_convolution_safe() {
        let k = RampKernel::new(100, 1.0, FilterWindow::RamLak);
        assert_eq!(k.padded_len(), 256);
        assert_eq!(k.response().len(), 129);
    }

    #[test]
    fn response_approximates_abs_frequency() {
        // The band-limited ramp's response is ≈ |f|/(2τ²·N) scaling-wise;
        // check proportionality against the continuous ramp at mid-band.
        let n = 256;
        let tau = 0.5;
        let k = RampKernel::new(n, tau, FilterWindow::RamLak);
        let half = k.padded_len() / 2;
        // Nyquist frequency in cycles/mm is 1/(2τ); bin b maps to
        // f = b/(half)·1/(2τ). The DFT of the sampled kernel carries the
        // usual 1/τ relative to the continuous transform |f| (compensated by
        // the τ step in the convolution), so response[b] ≈ |f|/τ.
        for b in [half / 8, half / 4, half / 2] {
            let f = b as f64 / half as f64 / (2.0 * tau);
            let got = k.response()[b];
            let expect = f / tau;
            assert!(
                (got - expect).abs() / expect < 0.05,
                "bin {b}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn dc_response_is_near_zero() {
        let k = RampKernel::new(128, 1.0, FilterWindow::RamLak);
        // The discrete ramp has a small positive DC term (it is not exactly
        // zero — that's the point of transforming the taps), bounded by the
        // first bin's magnitude.
        assert!(k.response()[0] >= 0.0);
        assert!(k.response()[0] < k.response()[1]);
    }

    #[test]
    fn windows_attenuate_high_frequencies_only() {
        let n = 128;
        let ram = RampKernel::new(n, 1.0, FilterWindow::RamLak);
        for w in [
            FilterWindow::SheppLogan,
            FilterWindow::Cosine,
            FilterWindow::Hamming,
            FilterWindow::Hann,
        ] {
            let k = RampKernel::new(n, 1.0, w);
            let half = k.padded_len() / 2;
            // Near DC the window gain ≈ 1.
            assert!((k.response()[1] - ram.response()[1]).abs() / ram.response()[1] < 0.01);
            // At Nyquist the window attenuates (strictly, except Shepp-Logan
            // which keeps 2/π).
            assert!(k.response()[half] < ram.response()[half]);
        }
    }

    #[test]
    fn window_gains_at_band_edges() {
        assert_eq!(FilterWindow::RamLak.gain(1.0), 1.0);
        assert!((FilterWindow::Hann.gain(1.0) - 0.0).abs() < 1e-12);
        assert!((FilterWindow::Hamming.gain(1.0) - 0.08).abs() < 1e-12);
        assert!((FilterWindow::SheppLogan.gain(1.0) - 2.0 / std::f64::consts::PI).abs() < 1e-12);
        for w in [
            FilterWindow::RamLak,
            FilterWindow::SheppLogan,
            FilterWindow::Cosine,
            FilterWindow::Hamming,
            FilterWindow::Hann,
        ] {
            assert!((w.gain(0.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn filtering_a_constant_row_yields_near_zero() {
        // The ramp kills DC: a flat row must filter to (almost) zero.
        let n = 64;
        let k = RampKernel::new(n, 1.0, FilterWindow::RamLak);
        let m = k.padded_len();
        let plan = RealFftPlan::new(m);
        let mut row = vec![1.0f64; n];
        row.resize(m, 0.0);
        let mut spec = plan.forward(&row);
        for (z, &h) in spec.iter_mut().zip(k.response()) {
            *z = z.scale(h);
        }
        let out = plan.inverse(&spec);
        // Relative to the DC-free content the residual is tiny; the absolute
        // level is bounded by response[0].
        let mid = out[n / 2].abs();
        assert!(mid < 0.02, "mid-row residual {mid}");
    }

    #[test]
    fn ramp_sharpens_an_impulse() {
        // Filtering an impulse must give the kernel back: positive centre,
        // negative side lobes.
        let n = 32;
        let k = RampKernel::new(n, 1.0, FilterWindow::RamLak);
        let m = k.padded_len();
        let plan = RealFftPlan::new(m);
        let mut row = vec![0.0f64; m];
        row[n / 2] = 1.0;
        let mut spec = plan.forward(&row);
        for (z, &h) in spec.iter_mut().zip(k.response()) {
            *z = z.scale(h);
        }
        let out = plan.inverse(&spec);
        assert!((out[n / 2] - 0.25).abs() < 0.01, "centre {}", out[n / 2]);
        assert!(out[n / 2 + 1] < 0.0);
        assert!(out[n / 2 - 1] < 0.0);
        // Even offsets nearly zero.
        assert!(out[n / 2 + 2].abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spacing_rejected() {
        let _ = RampKernel::new(8, 0.0, FilterWindow::RamLak);
    }
}
