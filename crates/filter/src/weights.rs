//! The FDK cosine pre-weight of Equation 2.

use scalefbp_geom::CbctGeometry;

/// The pre-weight `D_sd / √(D(u,v)² + D_sd²)` with
/// `D(u,v)² = (Δ_u(u − c_u))² + (Δ_v(v − c_v))²`.
///
/// The paper's Equation 2 centres on `N_u/2`; we centre on the calibrated
/// principal point `c_u = (N_u−1)/2 + σ_u` (and likewise for `v`) so the
/// weight stays consistent with the corrected projection matrix — for the
/// uncorrected case the two agree to within half a pixel.
pub fn cosine_weight(geom: &CbctGeometry, u: f64, v: f64) -> f64 {
    let cu = 0.5 * (geom.nu as f64 - 1.0) + geom.sigma_u;
    let cv = 0.5 * (geom.nv as f64 - 1.0) + geom.sigma_v;
    let dx = geom.du * (u - cu);
    let dy = geom.dv * (v - cv);
    let d2 = dx * dx + dy * dy;
    geom.dsd / (d2 + geom.dsd * geom.dsd).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(32, 16, 64, 48)
    }

    #[test]
    fn weight_is_one_at_principal_point() {
        let g = geom();
        let cu = 0.5 * (g.nu as f64 - 1.0);
        let cv = 0.5 * (g.nv as f64 - 1.0);
        assert!((cosine_weight(&g, cu, cv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weight_decreases_towards_edges_and_stays_in_unit_interval() {
        let g = geom();
        let cv = 0.5 * (g.nv as f64 - 1.0);
        let mut prev = f64::INFINITY;
        for u in (0..=31).map(|i| 31.5 + i as f64) {
            let w = cosine_weight(&g, u, cv);
            assert!(w > 0.0 && w <= 1.0);
            assert!(w < prev + 1e-15);
            prev = w;
        }
    }

    #[test]
    fn weight_is_cos_of_ray_angle() {
        let g = geom();
        let cv = 0.5 * (g.nv as f64 - 1.0);
        let u = 0.5 * (g.nu as f64 - 1.0) + 10.0;
        let lateral = 10.0 * g.du;
        let expected = g.dsd / (lateral * lateral + g.dsd * g.dsd).sqrt();
        assert!((cosine_weight(&g, u, cv) - expected).abs() < 1e-12);
    }

    #[test]
    fn weight_follows_calibrated_centre() {
        let mut g = geom();
        g.sigma_u = 4.0;
        let cu = 0.5 * (g.nu as f64 - 1.0) + 4.0;
        let cv = 0.5 * (g.nv as f64 - 1.0);
        assert!((cosine_weight(&g, cu, cv) - 1.0).abs() < 1e-12);
        assert!(cosine_weight(&g, cu - 8.0, cv) < 1.0);
    }

    #[test]
    fn weight_is_symmetric_about_centre() {
        let g = geom();
        let cu = 0.5 * (g.nu as f64 - 1.0);
        let cv = 0.5 * (g.nv as f64 - 1.0);
        for d in [1.0, 5.5, 20.0] {
            assert!((cosine_weight(&g, cu + d, cv) - cosine_weight(&g, cu - d, cv)).abs() < 1e-12);
            assert!((cosine_weight(&g, cu, cv + d) - cosine_weight(&g, cu, cv - d)).abs() < 1e-12);
        }
    }
}
