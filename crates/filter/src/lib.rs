//! The FDK filtering stage (Equation 2 of the paper): cosine pre-weighting
//! followed by a windowed ramp-filter convolution along each detector row.
//!
//! The paper runs this stage on the CPU (Intel IPP) so it overlaps the GPU
//! back-projection in the end-to-end pipeline; this crate plays the same
//! role on top of the from-scratch `scalefbp-fft` substrate:
//!
//! * [`cosine_weight`] — the pre-weight `D_sd/√(D(u,v)² + D_sd²)`.
//! * [`RampKernel`] / [`FilterWindow`] — the discrete band-limited ramp of
//!   Kak & Slaney evaluated on the *virtual detector* through the rotation
//!   axis, with Ram-Lak, Shepp-Logan, cosine, Hamming and Hann windows.
//! * [`FilterPipeline`] — a reusable per-geometry plan that filters whole
//!   detector-row-major `ProjectionStack`s in place, parallelised with
//!   rayon, producing rows ready for back-projection with the
//!   `Δφ·D_so²/z²` weighting.
//!
//! Normalisation convention: the pipeline folds the fan-beam/FDK `1/2`
//! full-scan redundancy factor and the `Δa` convolution step into the
//! filtered rows, so the back-projector only applies `Δφ·D_so²/z²` per
//! projection. A uniform-ball phantom then reconstructs to its true density
//! (validated in the integration tests).

mod pipeline;
mod ramp;
mod weights;

pub use pipeline::{FilterPipeline, FilterScratch};
pub use ramp::{FilterWindow, RampKernel};
pub use weights::cosine_weight;
