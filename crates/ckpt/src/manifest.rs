//! The checkpoint manifest: a small text file naming every durable slab.
//!
//! The manifest is the *commit record* of the checkpoint protocol. A slab
//! file that exists on disk but is not named here was in flight when the
//! run died and is ignored on resume; a slab named here was fully written,
//! fsynced, and renamed into place before the manifest was rewritten. The
//! whole file carries a CRC-32 trailer so a torn or hand-mangled manifest
//! is rejected rather than trusted.
//!
//! Format (line-oriented text, one record per line):
//!
//! ```text
//! # scalefbp checkpoint manifest v1
//! config = <16-hex-digit fingerprint of the reconstruction config>
//! slab = <z0> <z1> <file> <crc32-hex> <payload-bytes>
//! ...
//! crc = <crc32-hex of every preceding byte>
//! ```

use scalefbp_faults::crc32;

/// One durable slab: rows `[z.0, z.1)` of the volume live in `file`,
/// whose unsealed payload is `bytes` long and checksums to `crc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlabEntry {
    /// Half-open z-row range the slab covers.
    pub z: (usize, usize),
    /// Slab file name, relative to the checkpoint directory.
    pub file: String,
    /// CRC-32 of the slab payload (also sealed into the file itself).
    pub crc: u32,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Parsed manifest: the config fingerprint it was written under plus the
/// committed slabs, in commit order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Fingerprint of the reconstruction configuration (see
    /// [`fingerprint`]); resume refuses a manifest whose fingerprint does
    /// not match the current run's.
    pub config: u64,
    /// Committed slabs in commit order.
    pub slabs: Vec<SlabEntry>,
}

/// Why a manifest failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManifestError {
    /// A line did not match the expected grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The CRC-32 trailer did not match the manifest body — the file is
    /// torn or was edited.
    ChecksumMismatch {
        /// Trailer value.
        expected: u32,
        /// Recomputed body checksum.
        actual: u32,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Malformed { line, message } => {
                write!(f, "checkpoint manifest line {line}: {message}")
            }
            ManifestError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint manifest checksum mismatch (trailer {expected:#010x}, body {actual:#010x})"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

impl CheckpointManifest {
    /// A fresh, empty manifest for `config`.
    pub fn new(config: u64) -> Self {
        CheckpointManifest {
            config,
            slabs: Vec::new(),
        }
    }

    /// Records a committed slab, replacing any previous entry for the
    /// same z-range (a re-save after a retried slab is idempotent).
    pub fn commit_slab(&mut self, entry: SlabEntry) {
        if let Some(existing) = self.slabs.iter_mut().find(|s| s.z == entry.z) {
            *existing = entry;
        } else {
            self.slabs.push(entry);
        }
    }

    /// The committed z-ranges, in commit order.
    pub fn committed_ranges(&self) -> Vec<(usize, usize)> {
        self.slabs.iter().map(|s| s.z).collect()
    }

    /// Serializes to the text format, CRC trailer included.
    pub fn serialize(&self) -> String {
        let mut body = String::from("# scalefbp checkpoint manifest v1\n");
        body.push_str(&format!("config = {:016x}\n", self.config));
        for s in &self.slabs {
            body.push_str(&format!(
                "slab = {} {} {} {:08x} {}\n",
                s.z.0, s.z.1, s.file, s.crc, s.bytes
            ));
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc = {crc:08x}\n"));
        body
    }

    /// Parses the text format, verifying the CRC trailer before trusting
    /// any record.
    pub fn parse(text: &str) -> Result<CheckpointManifest, ManifestError> {
        let malformed = |line: usize, message: String| ManifestError::Malformed { line, message };
        // The trailer is the last non-empty line; everything before its
        // first byte is the checksummed body.
        let trimmed = text.trim_end_matches('\n');
        if trimmed.is_empty() {
            return Err(malformed(1, "empty manifest".into()));
        }
        let trailer_at = trimmed.rfind('\n').map(|p| p + 1).unwrap_or(0);
        let (body, trailer) = (&text[..trailer_at], &trimmed[trailer_at..]);
        let trailer_line = text[..trailer_at].lines().count() + 1;
        let expected = trailer
            .strip_prefix("crc = ")
            .and_then(|h| u32::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| {
                malformed(
                    trailer_line,
                    format!("expected `crc = <hex>` trailer, got `{trailer}`"),
                )
            })?;
        let actual = crc32(body.as_bytes());
        if actual != expected {
            return Err(ManifestError::ChecksumMismatch { expected, actual });
        }
        let mut config: Option<u64> = None;
        let mut slabs: Vec<SlabEntry> = Vec::new();
        for (idx, line) in body.lines().enumerate() {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("config = ") {
                let value = u64::from_str_radix(rest.trim(), 16)
                    .map_err(|_| malformed(line_no, format!("bad config fingerprint `{rest}`")))?;
                if config.replace(value).is_some() {
                    return Err(malformed(line_no, "duplicate config line".into()));
                }
            } else if let Some(rest) = line.strip_prefix("slab = ") {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                if fields.len() != 5 {
                    return Err(malformed(
                        line_no,
                        format!(
                            "slab record needs 5 fields (z0 z1 file crc bytes), got {}",
                            fields.len()
                        ),
                    ));
                }
                let z0: usize = fields[0]
                    .parse()
                    .map_err(|_| malformed(line_no, format!("bad z0 `{}`", fields[0])))?;
                let z1: usize = fields[1]
                    .parse()
                    .map_err(|_| malformed(line_no, format!("bad z1 `{}`", fields[1])))?;
                if z0 >= z1 {
                    return Err(malformed(line_no, format!("empty slab range {z0}..{z1}")));
                }
                let crc = u32::from_str_radix(fields[3], 16)
                    .map_err(|_| malformed(line_no, format!("bad slab crc `{}`", fields[3])))?;
                let bytes: u64 = fields[4]
                    .parse()
                    .map_err(|_| malformed(line_no, format!("bad slab bytes `{}`", fields[4])))?;
                slabs.push(SlabEntry {
                    z: (z0, z1),
                    file: fields[2].to_string(),
                    crc,
                    bytes,
                });
            } else {
                return Err(malformed(line_no, format!("unrecognized line `{line}`")));
            }
        }
        let config =
            config.ok_or_else(|| malformed(1, "manifest has no config fingerprint".into()))?;
        Ok(CheckpointManifest { config, slabs })
    }
}

/// FNV-1a fingerprint of a canonical configuration string. Stable across
/// runs and platforms; used to refuse resuming a checkpoint written under
/// a different reconstruction configuration.
pub fn fingerprint(canonical: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Splits a run's slab task ranges into (already checkpointed, still to
/// compute), by index. A task counts as checkpointed only when its *exact*
/// z-range is committed — partial overlap means the checkpoint was written
/// under a different decomposition, and the task reruns in full.
pub fn resume_partition(
    tasks: &[(usize, usize)],
    committed: &[(usize, usize)],
) -> (Vec<usize>, Vec<usize>) {
    let mut done = Vec::new();
    let mut todo = Vec::new();
    for (i, z) in tasks.iter().enumerate() {
        if committed.contains(z) {
            done.push(i);
        } else {
            todo.push(i);
        }
    }
    (done, todo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointManifest {
        let mut m = CheckpointManifest::new(0xDEAD_BEEF_0123_4567);
        m.commit_slab(SlabEntry {
            z: (0, 8),
            file: "slab_000000_000008.bin".into(),
            crc: 0x1234_ABCD,
            bytes: 4096,
        });
        m.commit_slab(SlabEntry {
            z: (8, 16),
            file: "slab_000008_000016.bin".into(),
            crc: 0x0000_0001,
            bytes: 4096,
        });
        m
    }

    #[test]
    fn round_trips() {
        let m = sample();
        assert_eq!(CheckpointManifest::parse(&m.serialize()).unwrap(), m);
        let empty = CheckpointManifest::new(7);
        assert_eq!(
            CheckpointManifest::parse(&empty.serialize()).unwrap(),
            empty
        );
    }

    #[test]
    fn commit_is_idempotent_per_range() {
        let mut m = sample();
        m.commit_slab(SlabEntry {
            z: (0, 8),
            file: "slab_000000_000008.bin".into(),
            crc: 0xFFFF_0000,
            bytes: 4096,
        });
        assert_eq!(m.slabs.len(), 2);
        assert_eq!(m.slabs[0].crc, 0xFFFF_0000);
    }

    #[test]
    fn torn_or_edited_manifests_are_rejected() {
        let text = sample().serialize();
        // Flip any single byte of the body: no edit is accepted. (Most
        // flips trip the CRC trailer; flipping the newline that ends the
        // body breaks the line grammar first, which is also a rejection.)
        let body_len = text.rfind("crc = ").unwrap();
        for i in 0..body_len {
            let mut bad = text.clone().into_bytes();
            bad[i] ^= 0x20;
            let bad = String::from_utf8(bad).unwrap();
            let parsed = CheckpointManifest::parse(&bad);
            assert!(parsed.is_err(), "edit at byte {i} accepted");
            if text.as_bytes()[i] != b'\n' {
                assert!(
                    matches!(parsed, Err(ManifestError::ChecksumMismatch { .. })),
                    "edit at byte {i}: {parsed:?}"
                );
            }
        }
        // Truncation mid-file loses the trailer.
        assert!(CheckpointManifest::parse(&text[..body_len]).is_err());
        assert!(CheckpointManifest::parse("").is_err());
    }

    #[test]
    fn malformed_records_carry_line_numbers() {
        // Re-seal a syntactically bad body so only the grammar is at fault.
        let reseal = |body: &str| {
            format!(
                "{body}crc = {:08x}\n",
                scalefbp_faults::crc32(body.as_bytes())
            )
        };
        let cases = [
            ("config = xyz\n", "bad config fingerprint"),
            ("config = 1\nconfig = 2\n", "duplicate config"),
            ("config = 1\nslab = 3 3 f.bin 0 9\n", "empty slab range"),
            ("config = 1\nslab = 0 4 f.bin zz 9\n", "bad slab crc"),
            ("config = 1\nslab = 0 4 f.bin 0\n", "needs 5 fields"),
            ("config = 1\nwhat is this\n", "unrecognized line"),
            ("# just a comment\n", "no config fingerprint"),
        ];
        for (body, needle) in cases {
            match CheckpointManifest::parse(&reseal(body)) {
                Err(ManifestError::Malformed { message, .. }) => {
                    assert!(message.contains(needle), "`{message}` vs `{needle}`")
                }
                other => panic!("`{body}` gave {other:?}"),
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint("a"), fingerprint("a"));
        assert_ne!(fingerprint("nz=64"), fingerprint("nz=65"));
    }

    #[test]
    fn resume_partition_is_exact_match_only() {
        let tasks = [(0, 4), (4, 8), (8, 12)];
        let (done, todo) = resume_partition(&tasks, &[(4, 8), (99, 100)]);
        assert_eq!(done, vec![1]);
        assert_eq!(todo, vec![0, 2]);
        // Partial overlap does not count.
        let (done, todo) = resume_partition(&tasks, &[(0, 3)]);
        assert!(done.is_empty());
        assert_eq!(todo, vec![0, 1, 2]);
    }
}
