//! Crash-consistent checkpoint/restart for long reconstructions.
//!
//! A checkpoint directory holds CRC-sealed slab payloads plus a
//! checksummed text [manifest](manifest::CheckpointManifest) that names
//! exactly the slabs whose stage → fsync → rename commit completed. Kill
//! the run at *any* instruction and the directory is still either
//! resumable or cleanly empty — the property the chaos harness
//! (`scalefbp-bench chaos`) verifies by killing runs mid-slab and
//! asserting the resumed volume is bitwise identical to an uninterrupted
//! one.
//!
//! The crate is deliberately payload-agnostic: it stores opaque byte
//! slabs keyed by z-row range. Encoding volumes in and out of those bytes
//! is the reconstruction drivers' job, which keeps this crate below
//! `scalefbp` (core) in the dependency order.

pub mod manifest;
pub mod store;

pub use manifest::{fingerprint, resume_partition, CheckpointManifest, ManifestError, SlabEntry};
pub use store::{CheckpointError, CheckpointSpec, CheckpointStore, MANIFEST_FILE};

#[cfg(test)]
mod proptests {
    use crate::manifest::{resume_partition, CheckpointManifest, SlabEntry};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any manifest survives a serialize → parse round trip.
        #[test]
        fn manifest_round_trips(
            config in any::<u64>(),
            starts in proptest::collection::vec(0usize..500, 0..12),
            lens in proptest::collection::vec(1usize..40, 12),
            crcs in proptest::collection::vec(any::<u64>(), 12),
        ) {
            let mut m = CheckpointManifest::new(config);
            for (i, z0) in starts.iter().enumerate() {
                m.commit_slab(SlabEntry {
                    z: (*z0, z0 + lens[i]),
                    file: format!("slab_{i:06}.bin"),
                    crc: crcs[i] as u32,
                    bytes: crcs[i] % 100_000,
                });
            }
            let parsed = CheckpointManifest::parse(&m.serialize());
            prop_assert_eq!(parsed.as_ref(), Ok(&m));
        }

        /// A resume point partitions the task list: every task is either
        /// checkpointed or still to do, never both, never neither.
        #[test]
        fn resume_partition_covers_all_tasks_exactly_once(
            bounds in proptest::collection::vec(1usize..30, 1..10),
            committed_prefix in 0usize..10,
        ) {
            // Build contiguous task ranges from the sampled widths.
            let mut tasks = Vec::new();
            let mut z = 0usize;
            for w in &bounds {
                tasks.push((z, z + w));
                z += w;
            }
            let k = committed_prefix.min(tasks.len());
            let committed: Vec<(usize, usize)> = tasks[..k].to_vec();
            let (done, todo) = resume_partition(&tasks, &committed);
            let mut all: Vec<usize> = done.iter().chain(todo.iter()).copied().collect();
            all.sort_unstable();
            let expected: Vec<usize> = (0..tasks.len()).collect();
            prop_assert_eq!(all, expected);
            prop_assert_eq!(done.len(), k);
            for i in &done {
                prop_assert!(committed.contains(&tasks[*i]));
            }
            for i in &todo {
                prop_assert!(!committed.contains(&tasks[*i]));
            }
        }
    }
}
