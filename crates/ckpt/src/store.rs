//! The checkpoint store: durable slab payloads behind an atomic manifest.
//!
//! Commit protocol for one slab (crash-consistent at every step):
//!
//! 1. the sealed slab file is staged, fsynced, and renamed into place
//!    ([`StorageEndpoint::write_file_sealed`]);
//! 2. the manifest — now naming the new slab — is rewritten through the
//!    same stage/fsync/rename path.
//!
//! A crash before step 2 leaves an orphan slab file the manifest never
//! names; resume ignores it. A crash mid-rename leaves the old file
//! visible. There is no window in which a reader can observe a slab that
//! is named but not durable.

use std::io;
use std::path::{Path, PathBuf};

use scalefbp_faults::{crc32, BackoffPolicy, RecoveryLog};
use scalefbp_iosim::StorageEndpoint;
use scalefbp_obs::Counter;

use crate::manifest::{CheckpointManifest, ManifestError, SlabEntry};

/// Manifest file name inside the checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST.txt";

/// How a checkpointed run should behave — carried from the CLI flags down
/// into the reconstruction drivers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint directory, relative to the storage endpoint root.
    pub dir: PathBuf,
    /// Save a checkpoint every `every` completed slabs.
    pub every: usize,
    /// Resume from the latest valid checkpoint instead of starting fresh.
    pub resume: bool,
    /// Chaos hook: abort the run (as if killed) after this many slab
    /// saves. `None` outside the chaos harness.
    pub kill_after_saves: Option<usize>,
}

impl CheckpointSpec {
    /// A spec that checkpoints into `dir` every `every` slabs.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointSpec {
            dir: dir.into(),
            every: every.max(1),
            resume: false,
            kill_after_saves: None,
        }
    }

    /// Enables resuming from the latest valid checkpoint.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Arms the chaos kill switch after `saves` slab saves.
    pub fn killing_after(mut self, saves: usize) -> Self {
        self.kill_after_saves = Some(saves);
        self
    }
}

/// Why a checkpoint could not be opened or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying storage failure.
    Io(io::Error),
    /// The manifest exists but does not parse or fails its checksum.
    Manifest(ManifestError),
    /// The manifest was written under a different reconstruction
    /// configuration; resuming would silently mix incompatible volumes.
    ConfigMismatch {
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint recorded in the manifest.
        found: u64,
    },
    /// A slab's payload no longer matches the checksum committed in the
    /// manifest.
    SlabCorrupt {
        /// The slab's z-range.
        z: (usize, usize),
        /// What went wrong reading it.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Manifest(e) => write!(f, "checkpoint manifest: {e}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint is stale: written under config {found:016x}, current is {expected:016x}"
            ),
            CheckpointError::SlabCorrupt { z, detail } => {
                write!(f, "checkpoint slab {}..{} corrupt: {detail}", z.0, z.1)
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ManifestError> for CheckpointError {
    fn from(e: ManifestError) -> Self {
        CheckpointError::Manifest(e)
    }
}

/// Cached `ckpt.*` counter handles.
struct CkptCounters {
    saves: Counter,
    bytes: Counter,
    manifest_writes: Counter,
    resumed_slabs: Counter,
}

/// A live checkpoint directory bound to one run.
pub struct CheckpointStore {
    endpoint: StorageEndpoint,
    dir: PathBuf,
    manifest: CheckpointManifest,
    counters: CkptCounters,
    saves_this_run: usize,
}

impl CheckpointStore {
    fn counters(endpoint: &StorageEndpoint) -> CkptCounters {
        let reg = endpoint.metrics_registry();
        CkptCounters {
            saves: reg.counter("ckpt.saves"),
            bytes: reg.counter("ckpt.bytes"),
            manifest_writes: reg.counter("ckpt.manifest.writes"),
            resumed_slabs: reg.counter("ckpt.resumed.slabs"),
        }
    }

    /// Starts a fresh checkpoint under `dir` for configuration
    /// fingerprint `config`, writing an empty manifest immediately so a
    /// crash before the first slab still leaves a valid directory.
    pub fn create(
        endpoint: &StorageEndpoint,
        dir: &Path,
        config: u64,
    ) -> Result<CheckpointStore, CheckpointError> {
        let mut store = CheckpointStore {
            endpoint: endpoint.clone(),
            dir: dir.to_path_buf(),
            manifest: CheckpointManifest::new(config),
            counters: CheckpointStore::counters(endpoint),
            saves_this_run: 0,
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Opens an existing checkpoint under `dir`, validating the manifest
    /// checksum and the configuration fingerprint.
    pub fn open(
        endpoint: &StorageEndpoint,
        dir: &Path,
        config: u64,
    ) -> Result<CheckpointStore, CheckpointError> {
        let raw = endpoint.read_file(&dir.join(MANIFEST_FILE))?;
        let text = String::from_utf8(raw).map_err(|_| {
            CheckpointError::Manifest(ManifestError::Malformed {
                line: 1,
                message: "manifest is not UTF-8".into(),
            })
        })?;
        let manifest = CheckpointManifest::parse(&text)?;
        if manifest.config != config {
            return Err(CheckpointError::ConfigMismatch {
                expected: config,
                found: manifest.config,
            });
        }
        Ok(CheckpointStore {
            endpoint: endpoint.clone(),
            dir: dir.to_path_buf(),
            manifest,
            counters: CheckpointStore::counters(endpoint),
            saves_this_run: 0,
        })
    }

    /// Opens the checkpoint if a manifest exists, otherwise creates a
    /// fresh one — the resume entry point. A manifest that exists but is
    /// corrupt or config-stale is an error, never silently discarded.
    pub fn open_or_create(
        endpoint: &StorageEndpoint,
        dir: &Path,
        config: u64,
    ) -> Result<CheckpointStore, CheckpointError> {
        match endpoint.read_file(&dir.join(MANIFEST_FILE)) {
            Ok(_) => CheckpointStore::open(endpoint, dir, config),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                CheckpointStore::create(endpoint, dir, config)
            }
            Err(e) => Err(CheckpointError::Io(e)),
        }
    }

    /// The committed manifest.
    pub fn manifest(&self) -> &CheckpointManifest {
        &self.manifest
    }

    /// Slab saves performed by *this* run (resumed slabs not included) —
    /// what the chaos kill switch counts.
    pub fn saves_this_run(&self) -> usize {
        self.saves_this_run
    }

    /// Durably commits one slab payload for z-rows `[z0, z1)`.
    pub fn save_slab(
        &mut self,
        z0: usize,
        z1: usize,
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        assert!(z0 < z1, "empty slab range {z0}..{z1}");
        let file = format!("slab_{z0:06}_{z1:06}.bin");
        self.endpoint
            .write_file_sealed(&self.dir.join(&file), payload)?;
        self.manifest.commit_slab(SlabEntry {
            z: (z0, z1),
            file,
            crc: crc32(payload),
            bytes: payload.len() as u64,
        });
        self.write_manifest()?;
        self.saves_this_run += 1;
        self.counters.saves.inc();
        self.counters.bytes.add(payload.len() as u64);
        Ok(())
    }

    /// Loads a committed slab's payload, verifying both the file seal and
    /// the manifest's recorded checksum. Transient read faults are
    /// retried under the integrity backoff policy; `recovery`, when
    /// given, records each detection.
    pub fn load_slab(
        &self,
        z: (usize, usize),
        recovery: Option<&RecoveryLog>,
    ) -> Result<Vec<u8>, CheckpointError> {
        let entry = self
            .manifest
            .slabs
            .iter()
            .find(|s| s.z == z)
            .ok_or_else(|| CheckpointError::SlabCorrupt {
                z,
                detail: "not in manifest".into(),
            })?;
        let payload = self
            .endpoint
            .read_file_sealed_retrying(
                &self.dir.join(&entry.file),
                BackoffPolicy::integrity(),
                recovery,
            )
            .map_err(|e| CheckpointError::SlabCorrupt {
                z,
                detail: e.to_string(),
            })?;
        if payload.len() as u64 != entry.bytes || crc32(&payload) != entry.crc {
            return Err(CheckpointError::SlabCorrupt {
                z,
                detail: format!(
                    "payload does not match manifest ({} B crc {:08x}, expected {} B crc {:08x})",
                    payload.len(),
                    crc32(&payload),
                    entry.bytes,
                    entry.crc
                ),
            });
        }
        self.counters.resumed_slabs.inc();
        Ok(payload)
    }

    fn write_manifest(&mut self) -> Result<(), CheckpointError> {
        self.endpoint.write_file_atomic(
            &self.dir.join(MANIFEST_FILE),
            self.manifest.serialize().as_bytes(),
        )?;
        self.counters.manifest_writes.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_endpoint(tag: &str) -> StorageEndpoint {
        let d = std::env::temp_dir().join(format!("scalefbp-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        StorageEndpoint::local_nvme(Some(d))
    }

    #[test]
    fn save_then_reopen_then_load_round_trips() {
        let ep = tmp_endpoint("roundtrip");
        let dir = Path::new("ck");
        let mut store = CheckpointStore::create(&ep, dir, 42).unwrap();
        let a: Vec<u8> = (0..64u8).collect();
        let b: Vec<u8> = (100..180u8).collect();
        store.save_slab(0, 8, &a).unwrap();
        store.save_slab(8, 16, &b).unwrap();
        assert_eq!(store.saves_this_run(), 2);
        let reopened = CheckpointStore::open(&ep, dir, 42).unwrap();
        assert_eq!(
            reopened.manifest().committed_ranges(),
            vec![(0, 8), (8, 16)]
        );
        assert_eq!(reopened.load_slab((0, 8), None).unwrap(), a);
        assert_eq!(reopened.load_slab((8, 16), None).unwrap(), b);
        let snap = ep.metrics_registry().snapshot();
        assert_eq!(snap.counter("ckpt.saves", None), Some(2));
        assert_eq!(snap.counter("ckpt.manifest.writes", None), Some(3));
        assert_eq!(snap.counter("ckpt.resumed.slabs", None), Some(2));
    }

    #[test]
    fn stale_config_is_refused() {
        let ep = tmp_endpoint("stale");
        let dir = Path::new("ck");
        CheckpointStore::create(&ep, dir, 1).unwrap();
        match CheckpointStore::open_or_create(&ep, dir, 2) {
            Err(CheckpointError::ConfigMismatch {
                expected: 2,
                found: 1,
            }) => {}
            Err(other) => panic!("wrong error for stale checkpoint: {other:?}"),
            Ok(_) => panic!("stale checkpoint accepted"),
        }
    }

    #[test]
    fn corrupt_manifest_is_refused_not_discarded() {
        let ep = tmp_endpoint("badmanifest");
        let dir = Path::new("ck");
        let mut store = CheckpointStore::create(&ep, dir, 9).unwrap();
        store.save_slab(0, 4, &[1, 2, 3]).unwrap();
        let rel = dir.join(MANIFEST_FILE);
        let mut text = String::from_utf8(ep.read_file(&rel).unwrap()).unwrap();
        text = text.replace("slab = 0 4", "slab = 0 5");
        ep.write_file(&rel, text.as_bytes()).unwrap();
        assert!(matches!(
            CheckpointStore::open_or_create(&ep, dir, 9),
            Err(CheckpointError::Manifest(
                ManifestError::ChecksumMismatch { .. }
            ))
        ));
    }

    #[test]
    fn orphan_slab_files_are_ignored_on_resume() {
        let ep = tmp_endpoint("orphan");
        let dir = Path::new("ck");
        let mut store = CheckpointStore::create(&ep, dir, 5).unwrap();
        store.save_slab(0, 4, &[7; 32]).unwrap();
        // A slab staged (or even renamed) without a manifest commit — the
        // crash window between protocol steps 1 and 2.
        ep.write_file(&dir.join("slab_000004_000008.bin"), &[9; 16])
            .unwrap();
        let reopened = CheckpointStore::open(&ep, dir, 5).unwrap();
        assert_eq!(reopened.manifest().committed_ranges(), vec![(0, 4)]);
        assert!(reopened.load_slab((4, 8), None).is_err());
    }

    #[test]
    fn slab_payload_tamper_is_detected_via_manifest_crc() {
        let ep = tmp_endpoint("tamper");
        let dir = Path::new("ck");
        let mut store = CheckpointStore::create(&ep, dir, 5).unwrap();
        store.save_slab(0, 4, &[1, 2, 3, 4]).unwrap();
        // Re-seal a *different* payload over the slab file: the file-level
        // seal verifies, but the manifest's committed checksum does not.
        ep.write_file_sealed(&dir.join("slab_000000_000004.bin"), &[9, 9, 9, 9])
            .unwrap();
        let reopened = CheckpointStore::open(&ep, dir, 5).unwrap();
        match reopened.load_slab((0, 4), None) {
            Err(CheckpointError::SlabCorrupt { z: (0, 4), detail }) => {
                assert!(detail.contains("does not match manifest"), "{detail}")
            }
            other => panic!("tampered slab accepted: {other:?}"),
        }
    }
}
