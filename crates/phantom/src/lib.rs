//! Analytic phantoms and a Beer's-law cone-beam forward projector.
//!
//! The paper evaluates on six proprietary / multi-hundred-GB scanned
//! datasets. This crate substitutes them (per the reproduction's
//! substitution rule, documented in `DESIGN.md`) with analytic ellipsoid
//! phantoms forward-projected through the *same acquisition geometries*:
//!
//! * [`Ellipsoid`] / [`Phantom`] — compositions of rotated ellipsoids with
//!   exact point densities and exact ray line-integrals, including the
//!   classic 3-D Shepp-Logan head ([`Phantom::shepp_logan`]) the paper
//!   itself uses for numerical validation, plus coffee-bean-like and
//!   bumblebee-like scenes for the dataset-shaped workloads.
//! * [`SourceDetectorFrame`] — the world-space pose of the source and the
//!   flat-panel detector at a scan angle, *exactly inverse* to the 3×4
//!   projection matrix of `scalefbp-geom` (unit-tested against it), so the
//!   forward and back projections are geometrically consistent.
//! * [`forward_project`] — analytic cone-beam projections (line integrals)
//!   of a phantom, parallelised over detector rows with rayon.
//! * [`PhotonScan`] — converts line integrals to raw photon counts with
//!   dark/blank fields (`λ = λ_blank·e^{−P} + λ_dark`, optionally with
//!   Poisson-like noise), so the Equation 1 pre-processing path
//!   (`P = −log((λ−λ_dark)/(λ_blank−λ_dark))`) is exercised end to end.

mod ellipsoid;
mod forward;
mod scenes;
mod stitching;

pub use ellipsoid::{Ellipsoid, Phantom, Ray};
pub use forward::{
    forward_project, forward_project_arc, forward_project_range, FrameRays, PhotonScan,
    SourceDetectorFrame,
};
pub use scenes::{bead_pile, bumblebee_like, coffee_bean_like, rasterize, uniform_ball};
pub use stitching::{offset_scan_geometries, stitch_offset_scans};
