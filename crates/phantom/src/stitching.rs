//! Offset-detector scan stitching — how the coffee-bean dataset was
//! acquired.
//!
//! Section 6.1: *"Offsetting a detector of size 2000×2000 to the left and
//! right side with overlapped region was conducted at two full scans. The
//! size of each stitched projection becomes N_u = 3728."* A flat panel
//! half as wide as the desired field of view is shifted laterally, the
//! object is scanned twice, and the two half-scans are stitched column-wise
//! (with a blended overlap) into wide projections.
//!
//! [`offset_scan_geometries`] derives the two shifted acquisition
//! geometries from the wide target geometry — the lateral shift is exactly
//! a `σ_u` detector offset, which is why the paper's general projection
//! matrix handles these scans while plain RTK-style geometry does not.
//! [`stitch_offset_scans`] reassembles the wide stack.

use scalefbp_geom::{CbctGeometry, ProjectionStack};

/// Splits a wide-detector geometry into the left- and right-offset
/// half-scan geometries of width `narrow_nu` (must overlap:
/// `narrow_nu > nu/2`).
///
/// The returned geometries differ from the wide one only in `nu` and
/// `σ_u`: left covers wide columns `[0, narrow_nu)`
/// (`σ_u += (nu − narrow_nu)/2`), right covers
/// `[nu − narrow_nu, nu)` (`σ_u −= (nu − narrow_nu)/2`).
pub fn offset_scan_geometries(
    wide: &CbctGeometry,
    narrow_nu: usize,
) -> (CbctGeometry, CbctGeometry) {
    assert!(
        narrow_nu < wide.nu,
        "narrow detector must be narrower than the stitched target"
    );
    assert!(
        2 * narrow_nu > wide.nu,
        "half-scans must overlap: 2·{narrow_nu} ≤ {}",
        wide.nu
    );
    let shift = 0.5 * (wide.nu - narrow_nu) as f64;
    let mut left = wide.clone();
    left.nu = narrow_nu;
    left.sigma_u = wide.sigma_u + shift;
    let mut right = wide.clone();
    right.nu = narrow_nu;
    right.sigma_u = wide.sigma_u - shift;
    (left, right)
}

/// Stitches two offset half-scans (acquired with the geometries of
/// [`offset_scan_geometries`]) into the wide stack: left columns verbatim,
/// right columns verbatim, and a linear cross-fade across the overlap —
/// the standard panel-stitching blend.
pub fn stitch_offset_scans(
    wide: &CbctGeometry,
    left: &ProjectionStack,
    right: &ProjectionStack,
) -> ProjectionStack {
    assert_eq!(left.nu(), right.nu(), "half-scans must share a width");
    let narrow = left.nu();
    assert!(
        narrow < wide.nu && 2 * narrow > wide.nu,
        "widths inconsistent"
    );
    assert_eq!(left.nv(), wide.nv, "row count mismatch");
    assert_eq!(left.np(), wide.np, "projection count mismatch");
    assert_eq!(right.nv(), wide.nv, "row count mismatch");
    assert_eq!(right.np(), wide.np, "projection count mismatch");

    let right_start = wide.nu - narrow; // wide column of right scan's u=0
    let overlap_begin = right_start;
    let overlap_end = narrow;
    let overlap_len = overlap_end - overlap_begin;

    let mut out = ProjectionStack::zeros(wide.nv, wide.np, wide.nu);
    for v in 0..wide.nv {
        for s in 0..wide.np {
            let l = left.row(v, s);
            let r = right.row(v, s);
            let o = out.row_mut(v, s);
            for (u, slot) in o.iter_mut().enumerate() {
                *slot = if u < overlap_begin {
                    l[u]
                } else if u >= overlap_end {
                    r[u - right_start]
                } else {
                    // Linear cross-fade from pure left to pure right.
                    let t = (u - overlap_begin + 1) as f32 / (overlap_len + 1) as f32;
                    l[u] * (1.0 - t) + r[u - right_start] * t
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{forward_project, uniform_ball};

    fn wide_geometry() -> CbctGeometry {
        // 60-column target stitched from two 40-column half-scans
        // (overlap 20), as in the coffee bean's 2×2000 → 3728.
        let g = CbctGeometry::ideal(24, 16, 60, 32);
        g.validate().unwrap();
        g
    }

    #[test]
    fn geometries_cover_the_wide_panel() {
        let wide = wide_geometry();
        let (left, right) = offset_scan_geometries(&wide, 40);
        assert_eq!(left.nu, 40);
        assert_eq!(right.nu, 40);
        assert!((left.sigma_u - 10.0).abs() < 1e-12);
        assert!((right.sigma_u + 10.0).abs() < 1e-12);
        left.validate().unwrap();
        right.validate().unwrap();
    }

    #[test]
    fn stitched_scan_equals_wide_detector_scan() {
        // The decisive property: stitching two offset scans of the same
        // object reproduces the single wide-detector scan, because each
        // half-scan pixel samples the *same ray* as its wide counterpart.
        let wide = wide_geometry();
        let ball = uniform_ball(&wide, 0.6, 1.0);
        let reference = forward_project(&wide, &ball);

        let (lg, rg) = offset_scan_geometries(&wide, 40);
        let left = forward_project(&lg, &ball);
        let right = forward_project(&rg, &ball);
        let stitched = stitch_offset_scans(&wide, &left, &right);

        let mut max_err = 0.0f32;
        for (a, b) in reference.data().iter().zip(stitched.data()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 1e-4, "stitch differs from wide scan by {max_err}");
    }

    #[test]
    fn stitched_scan_reconstructs() {
        // End-to-end: stitched offset scans through the corrected
        // projection matrix (the Table 4 capability).
        let wide = wide_geometry();
        let ball = uniform_ball(&wide, 0.5, 1.0);
        let (lg, rg) = offset_scan_geometries(&wide, 40);
        let stitched = stitch_offset_scans(
            &wide,
            &forward_project(&lg, &ball),
            &forward_project(&rg, &ball),
        );
        // Back-project via the wide geometry (full FDK lives in the core
        // crate; here a coarse consistency check suffices: the stitched
        // sinogram peaks at the detector centre like the wide one).
        let cu = (wide.nu - 1) / 2;
        let cv = (wide.nv - 1) / 2;
        let centre = stitched.get(cv, 0, cu);
        assert!(centre > 0.0);
        assert!(stitched.get(cv, 0, 0) < centre);
    }

    #[test]
    fn blend_is_smooth_across_the_overlap() {
        // A discontinuity between panels (e.g. gain mismatch) must fade,
        // not step.
        let wide = wide_geometry();
        let mut left = ProjectionStack::zeros(wide.nv, wide.np, 40);
        let mut right = ProjectionStack::zeros(wide.nv, wide.np, 40);
        left.data_mut().fill(1.0);
        right.data_mut().fill(2.0);
        let stitched = stitch_offset_scans(&wide, &left, &right);
        let row = stitched.row(0, 0);
        assert_eq!(row[0], 1.0);
        assert_eq!(row[wide.nu - 1], 2.0);
        // Monotone through the overlap, no step larger than the ramp unit.
        for w in row.windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
            assert!(w[1] - w[0] < 0.2, "step {} too large", w[1] - w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "must overlap")]
    fn disjoint_half_scans_rejected() {
        let wide = wide_geometry();
        let _ = offset_scan_geometries(&wide, 25);
    }
}
