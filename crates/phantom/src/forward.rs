//! Cone-beam forward projection: the acquisition simulator.

use rand::Rng;
use rayon::prelude::*;
use scalefbp_geom::{CbctGeometry, ProjectionStack};

use crate::{Phantom, Ray};

pub use scalefbp_geom::SourceDetectorFrame;

/// Ray casting on top of [`SourceDetectorFrame`] for the analytic phantom
/// integrals.
pub trait FrameRays {
    /// The measurement ray through detector pixel `(u, v)`.
    fn pixel_ray(&self, u: f64, v: f64) -> Ray;
}

impl FrameRays for SourceDetectorFrame {
    fn pixel_ray(&self, u: f64, v: f64) -> Ray {
        Ray::towards(self.source, self.pixel_position(u, v)).0
    }
}

/// Analytic cone-beam projections (log-domain line integrals, `P` of
/// Equation 1) of `phantom` over the full scan of `geom`, as a
/// detector-row-major [`ProjectionStack`].
///
/// Work is parallelised over detector rows (the outermost stack dimension).
pub fn forward_project(geom: &CbctGeometry, phantom: &Phantom) -> ProjectionStack {
    forward_project_range(geom, phantom, 0, geom.nv)
}

/// Like [`forward_project`] but over an arbitrary scan arc (radians):
/// projection `s` is acquired at `β = arc·s/N_p`. Used by the short-scan
/// reconstruction extension (`arc = π + 2Δ`).
pub fn forward_project_arc(geom: &CbctGeometry, phantom: &Phantom, arc: f64) -> ProjectionStack {
    assert!(arc > 0.0, "scan arc must be positive");
    let frames: Vec<SourceDetectorFrame> = (0..geom.np)
        .map(|s| SourceDetectorFrame::new(geom, arc * s as f64 / geom.np as f64))
        .collect();
    project_with_frames(geom, phantom, &frames, 0, geom.nv)
}

/// Like [`forward_project`] but only for global detector rows
/// `[v_begin, v_end)` — what one storage shard of a distributed acquisition
/// holds. The returned stack has a matching `v_offset`.
pub fn forward_project_range(
    geom: &CbctGeometry,
    phantom: &Phantom,
    v_begin: usize,
    v_end: usize,
) -> ProjectionStack {
    let frames: Vec<SourceDetectorFrame> = (0..geom.np)
        .map(|s| SourceDetectorFrame::for_index(geom, s))
        .collect();
    project_with_frames(geom, phantom, &frames, v_begin, v_end)
}

fn project_with_frames(
    geom: &CbctGeometry,
    phantom: &Phantom,
    frames: &[SourceDetectorFrame],
    v_begin: usize,
    v_end: usize,
) -> ProjectionStack {
    assert!(
        v_begin <= v_end && v_end <= geom.nv,
        "row range out of bounds"
    );
    let nv = v_end - v_begin;
    let mut stack = ProjectionStack::zeros_window(nv, geom.np, geom.nu, v_begin, 0);
    let np = geom.np;
    let nu = geom.nu;
    let row_stride = np * nu;
    stack
        .data_mut()
        .par_chunks_mut(row_stride)
        .enumerate()
        .for_each(|(v_local, row_block)| {
            let v = (v_begin + v_local) as f64;
            for (s, frame) in frames.iter().enumerate() {
                let row = &mut row_block[s * nu..(s + 1) * nu];
                for (u, px) in row.iter_mut().enumerate() {
                    let ray = frame.pixel_ray(u as f64, v);
                    *px = phantom.line_integral(&ray) as f32;
                }
            }
        });
    stack
}

/// A raw photon-count acquisition: `λ = λ_blank·e^{−P} + λ_dark`, plus the
/// dark and blank calibration fields, matching what a real scanner delivers
/// before the Equation 1 normalisation.
#[derive(Clone, Debug)]
pub struct PhotonScan {
    /// Raw photon counts, same shape as the line-integral stack.
    pub counts: ProjectionStack,
    /// Background offset field value (`λ_dark`).
    pub dark: f32,
    /// Normalisation scan field value (`λ_blank`).
    pub blank: f32,
}

impl PhotonScan {
    /// Converts log-domain projections to photon counts. If `noise_rng` is
    /// provided, multiplicative noise with relative σ `1/√λ` approximates
    /// Poisson counting statistics.
    pub fn from_projections(
        projections: &ProjectionStack,
        dark: f32,
        blank: f32,
        mut noise_rng: Option<&mut dyn rand::RngCore>,
    ) -> PhotonScan {
        assert!(blank > dark, "blank field must exceed dark field");
        let mut counts = projections.clone();
        let scale = (blank - dark) as f64;
        for px in counts.data_mut() {
            let mut lambda = scale * (-(*px as f64)).exp() + dark as f64;
            if let Some(rng) = noise_rng.as_deref_mut() {
                let sigma = lambda.max(1.0).sqrt();
                // Box-Muller normal approximation to Poisson(λ).
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                lambda = (lambda + sigma * n).max(dark as f64 + 1e-3);
            }
            *px = lambda as f32;
        }
        PhotonScan {
            counts,
            dark,
            blank,
        }
    }

    /// Equation 1: `P = −log((λ − λ_dark)/(λ_blank − λ_dark))`, recovering
    /// log-domain projections from raw counts.
    pub fn normalise(&self) -> ProjectionStack {
        let mut out = self.counts.clone();
        let denom = self.blank - self.dark;
        for px in out.data_mut() {
            let num = (*px - self.dark).max(f32::MIN_POSITIVE);
            *px = -(num / denom).ln();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_ball;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(33, 24, 48, 40)
    }

    #[test]
    fn ball_projection_peaks_at_detector_centre() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let cu = (g.nu - 1) / 2;
        let cv = (g.nv - 1) / 2;
        let centre = p.get(cv, 0, cu);
        // Central ray chord = ball diameter · magnification correction: the
        // chord through the centre is exactly the diameter.
        let r = 0.5 * g.footprint_radius() * 0.95;
        assert!(
            (centre as f64 - 2.0 * r).abs() < 2.0 * r * 0.05,
            "centre {} vs diameter {}",
            centre,
            2.0 * r
        );
        // Monotone decrease toward the detector edge.
        assert!(p.get(cv, 0, 0) < centre);
        assert!(p.get(0, 0, cu) < centre);
    }

    #[test]
    fn projection_of_centered_ball_is_angle_invariant() {
        let g = geom();
        let ball = uniform_ball(&g, 0.4, 2.0);
        let p = forward_project(&g, &ball);
        let cu = (g.nu - 1) / 2;
        let cv = (g.nv - 1) / 2;
        let v0 = p.get(cv, 0, cu);
        for s in 1..g.np {
            assert!(
                (p.get(cv, s, cu) - v0).abs() < 1e-4,
                "angle {s}: {} vs {v0}",
                p.get(cv, s, cu)
            );
        }
    }

    #[test]
    fn forward_project_range_matches_full() {
        let g = geom();
        let ball = uniform_ball(&g, 0.4, 1.0);
        let full = forward_project(&g, &ball);
        let part = forward_project_range(&g, &ball, 10, 20);
        assert_eq!(part.v_offset(), 10);
        for v in 0..10 {
            for s in [0, 5] {
                for u in 0..g.nu {
                    assert_eq!(part.get(v, s, u), full.get(v + 10, s, u));
                }
            }
        }
    }

    #[test]
    fn photon_roundtrip_recovers_projections() {
        let g = geom();
        let ball = uniform_ball(&g, 0.4, 1.0);
        let p = forward_project(&g, &ball);
        let scan = PhotonScan::from_projections(&p, 100.0, 60000.0, None);
        let back = scan.normalise();
        let err = p
            .data()
            .iter()
            .zip(back.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "max err {err}");
    }

    #[test]
    fn photon_noise_perturbs_but_stays_close() {
        let g = geom();
        let ball = uniform_ball(&g, 0.4, 1.0);
        let p = forward_project(&g, &ball);
        let mut rng = rand::rngs::mock::StepRng::new(12345, 0x9E3779B97F4A7C15);
        let scan = PhotonScan::from_projections(&p, 100.0, 60000.0, Some(&mut rng));
        let back = scan.normalise();
        let rms: f64 = {
            let s: f64 = p
                .data()
                .iter()
                .zip(back.data())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum();
            (s / p.len() as f64).sqrt()
        };
        assert!(rms > 0.0, "noise should perturb");
        assert!(rms < 0.1, "noise unreasonably large: {rms}");
    }

    #[test]
    #[should_panic(expected = "blank field must exceed dark")]
    fn photon_scan_rejects_bad_fields() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.3, 1.0));
        let _ = PhotonScan::from_projections(&p, 10.0, 5.0, None);
    }
}
