//! Dataset-shaped phantom scenes and volume rasterisation.

use rand::Rng;
use rayon::prelude::*;
use scalefbp_geom::{CbctGeometry, Volume};

use crate::{Ellipsoid, Phantom};

/// A uniform ball centred on the rotation axis. `radius_frac` scales the
/// geometry's safe footprint radius (·0.95), so values in `(0, 1]` always
/// stay inside the scanned cylinder.
pub fn uniform_ball(geom: &CbctGeometry, radius_frac: f64, density: f32) -> Phantom {
    let r = geom.footprint_radius() * 0.95 * radius_frac;
    Phantom::new(vec![Ellipsoid::sphere([0.0; 3], r, density)])
}

/// A coffee-bean-like scene: an ellipsoidal hull with the bean's centre
/// crease and internal voids/pores — the low-contrast laminar structure the
/// paper highlights (walls, hollow pores, voids).
pub fn coffee_bean_like(geom: &CbctGeometry) -> Phantom {
    let r = geom.footprint_radius() * 0.9;
    let mut ph = Phantom::default();
    // Bean hull: flattened ellipsoid.
    ph.push(Ellipsoid {
        center: [0.0; 3],
        semi_axes: [0.55 * r, 0.85 * r, 0.40 * r],
        gamma: 0.3,
        density: 1.0,
    });
    // The crease: a thin negative slab approximated by a flat ellipsoid.
    ph.push(Ellipsoid {
        center: [0.0, 0.0, 0.12 * r],
        semi_axes: [0.08 * r, 0.8 * r, 0.30 * r],
        gamma: 0.3,
        density: -0.6,
    });
    // Internal pores.
    let pores = [
        ([0.20, 0.30, -0.05], 0.10),
        ([-0.18, -0.25, 0.08], 0.08),
        ([0.05, -0.45, -0.12], 0.06),
        ([-0.22, 0.42, 0.02], 0.05),
        ([0.30, -0.10, 0.10], 0.07),
    ];
    for (c, pr) in pores {
        ph.push(Ellipsoid::sphere(
            [c[0] * r, c[1] * r, c[2] * r],
            pr * r,
            -0.35,
        ));
    }
    ph
}

/// A bumblebee-like scene: a segmented body (head/thorax/abdomen) of low
/// density with denser chitin shells, mimicking the insect micro-CT dataset.
pub fn bumblebee_like(geom: &CbctGeometry) -> Phantom {
    let r = geom.footprint_radius() * 0.9;
    let seg = |cy: f64, a: f64, b: f64, c: f64| {
        [
            Ellipsoid {
                center: [0.0, cy * r, 0.0],
                semi_axes: [a * r, b * r, c * r],
                gamma: 0.0,
                density: 0.8,
            },
            Ellipsoid {
                center: [0.0, cy * r, 0.0],
                semi_axes: [a * r * 0.85, b * r * 0.85, c * r * 0.85],
                gamma: 0.0,
                density: -0.6,
            },
        ]
    };
    let mut parts = Vec::new();
    parts.extend(seg(0.55, 0.18, 0.18, 0.18)); // head
    parts.extend(seg(0.15, 0.28, 0.25, 0.25)); // thorax
    parts.extend(seg(-0.40, 0.30, 0.42, 0.30)); // abdomen
                                                // Flight muscles inside the thorax.
    parts.push(Ellipsoid {
        center: [0.0, 0.15 * r, 0.0],
        semi_axes: [0.15 * r, 0.12 * r, 0.12 * r],
        gamma: 0.0,
        density: 0.4,
    });
    Phantom::new(parts)
}

/// A pile of random beads inside a cylindrical container wall — the granular
/// NDT workload (metal foams / trabecular bone analogues cited in Section
/// 6.1). Deterministic for a given `seed`.
pub fn bead_pile(geom: &CbctGeometry, beads: usize, seed: u64) -> Phantom {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let r = geom.footprint_radius() * 0.9;
    let half_h = 0.45 * geom.nz as f64 * geom.dz;
    let mut ph = Phantom::default();
    // Container: outer minus inner cylinder approximated by tall ellipsoids.
    ph.push(Ellipsoid::axis_aligned([0.0; 3], [r, r, half_h * 1.8], 0.3));
    ph.push(Ellipsoid::axis_aligned(
        [0.0; 3],
        [0.92 * r, 0.92 * r, half_h * 1.8 * 0.98],
        -0.3,
    ));
    for _ in 0..beads {
        let br = rng.gen_range(0.04..0.10) * r;
        let rho = rng.gen_range(0.5..1.2);
        // Rejection-free placement in a cylinder of radius 0.8r − br.
        let max_c = 0.8 * r - br;
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let rad = max_c * rng.gen_range(0.0f64..1.0).sqrt();
        let z = rng.gen_range(-(half_h - br)..(half_h - br));
        ph.push(Ellipsoid::sphere(
            [rad * theta.cos(), rad * theta.sin(), z],
            br,
            rho as f32,
        ));
    }
    ph
}

/// Rasterises a phantom onto the geometry's voxel grid (the ground truth
/// that reconstructions are compared against). Parallelised over slices.
pub fn rasterize(geom: &CbctGeometry, phantom: &Phantom) -> Volume {
    let mut vol = Volume::zeros(geom.nx, geom.ny, geom.nz);
    let (nx, ny) = (geom.nx, geom.ny);
    let slice_len = nx * ny;
    vol.data_mut()
        .par_chunks_mut(slice_len)
        .enumerate()
        .for_each(|(k, slice)| {
            let z = geom.voxel_z(k);
            for j in 0..ny {
                let y = geom.voxel_y(j);
                for i in 0..nx {
                    let x = geom.voxel_x(i);
                    slice[j * nx + i] = phantom.density_at([x, y, z]);
                }
            }
        });
    vol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(32, 16, 48, 48)
    }

    #[test]
    fn uniform_ball_fits_inside_footprint() {
        let g = geom();
        let ball = uniform_ball(&g, 1.0, 1.0);
        let e = ball.ellipsoids()[0];
        assert!(e.semi_axes[0] < g.footprint_radius());
        assert!(ball.density_at([0.0; 3]) == 1.0);
    }

    #[test]
    fn scenes_are_nonempty_and_bounded() {
        let g = geom();
        for ph in [
            coffee_bean_like(&g),
            bumblebee_like(&g),
            bead_pile(&g, 20, 7),
        ] {
            assert!(!ph.ellipsoids().is_empty());
            let r = g.footprint_radius();
            // Everything inside the scan cylinder (centres at least).
            for e in ph.ellipsoids() {
                let rad = (e.center[0] * e.center[0] + e.center[1] * e.center[1]).sqrt();
                assert!(rad < r, "ellipsoid centre outside footprint");
            }
            // Some interior structure exists: at least one ellipsoid centre
            // has nonzero total density.
            assert!(
                ph.ellipsoids()
                    .iter()
                    .any(|e| ph.density_at(e.center) != 0.0),
                "scene looks empty"
            );
        }
    }

    #[test]
    fn bead_pile_is_deterministic_per_seed() {
        let g = geom();
        let a = bead_pile(&g, 15, 42);
        let b = bead_pile(&g, 15, 42);
        let c = bead_pile(&g, 15, 43);
        assert_eq!(a.ellipsoids().len(), b.ellipsoids().len());
        for (x, y) in a.ellipsoids().iter().zip(b.ellipsoids()) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.density, y.density);
        }
        // Different seed gives different placement.
        let same = a
            .ellipsoids()
            .iter()
            .zip(c.ellipsoids())
            .all(|(x, y)| x.center == y.center);
        assert!(!same);
    }

    #[test]
    fn rasterize_matches_point_density() {
        let g = geom();
        let ph = uniform_ball(&g, 0.6, 2.0);
        let vol = rasterize(&g, &ph);
        for (i, j, k) in [(16, 16, 16), (0, 0, 0), (31, 31, 31), (16, 16, 0)] {
            let expect = ph.density_at([g.voxel_x(i), g.voxel_y(j), g.voxel_z(k)]);
            assert_eq!(vol.get(i, j, k), expect);
        }
    }

    #[test]
    fn rasterized_ball_volume_approximates_analytic() {
        let g = geom();
        let ph = uniform_ball(&g, 0.8, 1.0);
        let r = ph.ellipsoids()[0].semi_axes[0];
        let vol = rasterize(&g, &ph);
        let voxel_vol = g.dx * g.dy * g.dz;
        let measured: f64 = vol.data().iter().map(|&v| v as f64).sum::<f64>() * voxel_vol;
        let analytic = 4.0 / 3.0 * std::f64::consts::PI * r * r * r;
        assert!(
            (measured - analytic).abs() / analytic < 0.05,
            "measured {measured} vs analytic {analytic}"
        );
    }
}
