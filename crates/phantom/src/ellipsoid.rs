//! Rotated ellipsoids with exact densities and ray line-integrals.

/// A ray `p(t) = origin + t·dir` with `dir` of unit length, so `t` is in mm.
#[derive(Clone, Copy, Debug)]
pub struct Ray {
    /// Start point (mm, world frame).
    pub origin: [f64; 3],
    /// Unit direction.
    pub dir: [f64; 3],
}

impl Ray {
    /// Creates a ray from `origin` towards `target`, normalising the
    /// direction. Returns the ray and the distance to the target.
    pub fn towards(origin: [f64; 3], target: [f64; 3]) -> (Ray, f64) {
        let d = [
            target[0] - origin[0],
            target[1] - origin[1],
            target[2] - origin[2],
        ];
        let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!(len > 0.0, "ray target coincides with origin");
        (
            Ray {
                origin,
                dir: [d[0] / len, d[1] / len, d[2] / len],
            },
            len,
        )
    }
}

/// An ellipsoid with semi-axes `(a, b, c)`, centred at `center`, rotated by
/// `gamma` radians about the world Z axis, contributing `density` to every
/// interior point (densities of overlapping ellipsoids add, the Shepp-Logan
/// convention of using negative densities for cavities).
#[derive(Clone, Copy, Debug)]
pub struct Ellipsoid {
    /// Centre (mm).
    pub center: [f64; 3],
    /// Semi-axes (mm) along the ellipsoid's own x/y/z.
    pub semi_axes: [f64; 3],
    /// Rotation about the world Z axis (radians).
    pub gamma: f64,
    /// Additive attenuation density.
    pub density: f32,
}

impl Ellipsoid {
    /// Axis-aligned ellipsoid.
    pub fn axis_aligned(center: [f64; 3], semi_axes: [f64; 3], density: f32) -> Self {
        Ellipsoid {
            center,
            semi_axes,
            gamma: 0.0,
            density,
        }
    }

    /// A sphere.
    pub fn sphere(center: [f64; 3], radius: f64, density: f32) -> Self {
        Self::axis_aligned(center, [radius; 3], density)
    }

    /// Maps a world point into the ellipsoid's normalised frame where the
    /// surface is the unit sphere.
    #[inline]
    fn normalise(&self, p: [f64; 3]) -> [f64; 3] {
        let (s, c) = self.gamma.sin_cos();
        let x = p[0] - self.center[0];
        let y = p[1] - self.center[1];
        let z = p[2] - self.center[2];
        // Rotate by -gamma about Z, then scale by the semi-axes.
        [
            (c * x + s * y) / self.semi_axes[0],
            (-s * x + c * y) / self.semi_axes[1],
            z / self.semi_axes[2],
        ]
    }

    /// Like [`normalise`](Self::normalise) but for directions (no
    /// translation).
    #[inline]
    fn normalise_dir(&self, d: [f64; 3]) -> [f64; 3] {
        let (s, c) = self.gamma.sin_cos();
        [
            (c * d[0] + s * d[1]) / self.semi_axes[0],
            (-s * d[0] + c * d[1]) / self.semi_axes[1],
            d[2] / self.semi_axes[2],
        ]
    }

    /// True if the world point lies strictly inside the ellipsoid.
    pub fn contains(&self, p: [f64; 3]) -> bool {
        let q = self.normalise(p);
        q[0] * q[0] + q[1] * q[1] + q[2] * q[2] < 1.0
    }

    /// Chord length (mm) of the ray inside the ellipsoid (zero if missed).
    pub fn chord(&self, ray: &Ray) -> f64 {
        let o = self.normalise(ray.origin);
        let d = self.normalise_dir(ray.dir);
        let a = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        let b = 2.0 * (o[0] * d[0] + o[1] * d[1] + o[2] * d[2]);
        let c = o[0] * o[0] + o[1] * o[1] + o[2] * o[2] - 1.0;
        let disc = b * b - 4.0 * a * c;
        if disc <= 0.0 || a == 0.0 {
            return 0.0;
        }
        // t2 - t1 = sqrt(disc)/a in the normalised parameterisation; because
        // `dir` is unit length in world space and `t` is shared, the world
        // chord is the same difference.
        disc.sqrt() / a
    }
}

/// A sum of ellipsoids.
#[derive(Clone, Debug, Default)]
pub struct Phantom {
    ellipsoids: Vec<Ellipsoid>,
}

impl Phantom {
    /// A phantom from parts.
    pub fn new(ellipsoids: Vec<Ellipsoid>) -> Self {
        Phantom { ellipsoids }
    }

    /// The component ellipsoids.
    pub fn ellipsoids(&self) -> &[Ellipsoid] {
        &self.ellipsoids
    }

    /// Adds an ellipsoid.
    pub fn push(&mut self, e: Ellipsoid) {
        self.ellipsoids.push(e);
    }

    /// Point density at a world position (sum over containing ellipsoids).
    pub fn density_at(&self, p: [f64; 3]) -> f32 {
        self.ellipsoids
            .iter()
            .filter(|e| e.contains(p))
            .map(|e| e.density)
            .sum()
    }

    /// Exact line integral of the density along a ray (mm·density).
    pub fn line_integral(&self, ray: &Ray) -> f64 {
        self.ellipsoids
            .iter()
            .map(|e| e.chord(ray) * e.density as f64)
            .sum()
    }

    /// The classic 3-D Shepp-Logan head phantom, scaled so the outer skull
    /// ellipsoid has semi-axes `(0.69, 0.92, 0.90)·radius` — pass the radius
    /// (mm) that fits your geometry's field of view.
    ///
    /// Ellipsoid table after Kak & Slaney / the standard 3-D extension;
    /// densities are the "modified" high-contrast values commonly used for
    /// numerical work.
    pub fn shepp_logan(radius: f64) -> Self {
        let r = radius;
        let deg = |d: f64| d.to_radians();
        let e = |x: f64, y: f64, z: f64, a: f64, b: f64, c: f64, g: f64, rho: f32| Ellipsoid {
            center: [x * r, y * r, z * r],
            semi_axes: [a * r, b * r, c * r],
            gamma: g,
            density: rho,
        };
        Phantom::new(vec![
            e(0.0, 0.0, 0.0, 0.69, 0.92, 0.90, 0.0, 1.0),
            e(0.0, -0.0184, 0.0, 0.6624, 0.874, 0.88, 0.0, -0.8),
            e(0.22, 0.0, 0.0, 0.11, 0.31, 0.22, deg(-18.0), -0.2),
            e(-0.22, 0.0, 0.0, 0.16, 0.41, 0.28, deg(18.0), -0.2),
            e(0.0, 0.35, -0.15, 0.21, 0.25, 0.41, 0.0, 0.1),
            e(0.0, 0.1, 0.25, 0.046, 0.046, 0.05, 0.0, 0.1),
            e(0.0, -0.1, 0.25, 0.046, 0.046, 0.05, 0.0, 0.1),
            e(-0.08, -0.605, 0.0, 0.046, 0.023, 0.05, 0.0, 0.1),
            e(0.0, -0.605, 0.0, 0.023, 0.023, 0.02, 0.0, 0.1),
            e(0.06, -0.605, 0.0, 0.023, 0.046, 0.02, 0.0, 0.1),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_contains_center_not_outside() {
        let s = Ellipsoid::sphere([1.0, 2.0, 3.0], 0.5, 1.0);
        assert!(s.contains([1.0, 2.0, 3.0]));
        assert!(s.contains([1.4, 2.0, 3.0]));
        assert!(!s.contains([1.6, 2.0, 3.0]));
    }

    #[test]
    fn chord_through_sphere_center_is_diameter() {
        let s = Ellipsoid::sphere([0.0, 0.0, 0.0], 2.0, 1.0);
        let (ray, _) = Ray::towards([-10.0, 0.0, 0.0], [10.0, 0.0, 0.0]);
        assert!((s.chord(&ray) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn chord_off_center_matches_circle_geometry() {
        let s = Ellipsoid::sphere([0.0, 0.0, 0.0], 2.0, 1.0);
        // Ray at impact parameter 1: chord = 2·√(r² − 1) = 2√3.
        let (ray, _) = Ray::towards([-10.0, 1.0, 0.0], [10.0, 1.0, 0.0]);
        assert!((s.chord(&ray) - 2.0 * 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn missing_ray_has_zero_chord() {
        let s = Ellipsoid::sphere([0.0, 0.0, 0.0], 1.0, 1.0);
        let (ray, _) = Ray::towards([-10.0, 5.0, 0.0], [10.0, 5.0, 0.0]);
        assert_eq!(s.chord(&ray), 0.0);
        // Tangent ray also reports zero (degenerate chord).
        let (tangent, _) = Ray::towards([-10.0, 1.0, 0.0], [10.0, 1.0, 0.0]);
        assert!(s.chord(&tangent) < 1e-9);
    }

    #[test]
    fn ellipsoid_chord_along_each_axis() {
        let e = Ellipsoid::axis_aligned([0.0; 3], [1.0, 2.0, 3.0], 1.0);
        let (rx, _) = Ray::towards([-10.0, 0.0, 0.0], [10.0, 0.0, 0.0]);
        let (ry, _) = Ray::towards([0.0, -10.0, 0.0], [0.0, 10.0, 0.0]);
        let (rz, _) = Ray::towards([0.0, 0.0, -10.0], [0.0, 0.0, 10.0]);
        assert!((e.chord(&rx) - 2.0).abs() < 1e-12);
        assert!((e.chord(&ry) - 4.0).abs() < 1e-12);
        assert!((e.chord(&rz) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_about_z_swaps_xy_extents() {
        let e = Ellipsoid {
            center: [0.0; 3],
            semi_axes: [1.0, 3.0, 1.0],
            gamma: std::f64::consts::FRAC_PI_2,
            density: 1.0,
        };
        // After 90° rotation the long axis lies along world X.
        let (rx, _) = Ray::towards([-10.0, 0.0, 0.0], [10.0, 0.0, 0.0]);
        assert!((e.chord(&rx) - 6.0).abs() < 1e-9);
        assert!(e.contains([2.5, 0.0, 0.0]));
        assert!(!e.contains([0.0, 2.5, 0.0]));
    }

    #[test]
    fn oblique_ray_chord_matches_numerical_integration() {
        let e = Ellipsoid {
            center: [0.5, -0.25, 0.1],
            semi_axes: [1.0, 0.7, 0.4],
            gamma: 0.6,
            density: 1.0,
        };
        let (ray, _) = Ray::towards([-5.0, -2.0, -1.0], [5.0, 1.5, 0.7]);
        // March the ray and accumulate inside-length.
        let n = 2_000_000;
        let t_max = 14.0;
        let dt = t_max / n as f64;
        let mut acc = 0.0;
        for step in 0..n {
            let t = (step as f64 + 0.5) * dt;
            let p = [
                ray.origin[0] + t * ray.dir[0],
                ray.origin[1] + t * ray.dir[1],
                ray.origin[2] + t * ray.dir[2],
            ];
            if e.contains(p) {
                acc += dt;
            }
        }
        assert!(
            (e.chord(&ray) - acc).abs() < 1e-4,
            "analytic {} vs numeric {acc}",
            e.chord(&ray)
        );
    }

    #[test]
    fn phantom_density_sums_overlaps() {
        let p = Phantom::new(vec![
            Ellipsoid::sphere([0.0; 3], 2.0, 1.0),
            Ellipsoid::sphere([0.0; 3], 1.0, -0.5),
        ]);
        assert!((p.density_at([0.0, 0.0, 0.0]) - 0.5).abs() < 1e-6);
        assert!((p.density_at([1.5, 0.0, 0.0]) - 1.0).abs() < 1e-6);
        assert_eq!(p.density_at([3.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn phantom_line_integral_sums_chords() {
        let p = Phantom::new(vec![
            Ellipsoid::sphere([0.0; 3], 2.0, 1.0),
            Ellipsoid::sphere([0.0; 3], 1.0, -0.5),
        ]);
        let (ray, _) = Ray::towards([-10.0, 0.0, 0.0], [10.0, 0.0, 0.0]);
        // 4·1.0 + 2·(−0.5) = 3.
        assert!((p.line_integral(&ray) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shepp_logan_has_expected_structure() {
        let p = Phantom::shepp_logan(10.0);
        assert_eq!(p.ellipsoids().len(), 10);
        // Interior of the head: skull (1.0) + brain (−0.8) = 0.2.
        assert!((p.density_at([0.0, 0.0, 0.0]) - 0.2).abs() < 1e-6);
        // Outside everything.
        assert_eq!(p.density_at([20.0, 0.0, 0.0]), 0.0);
        // Inside skull shell only.
        assert!((p.density_at([0.0, 9.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "coincides")]
    fn degenerate_ray_rejected() {
        let _ = Ray::towards([1.0, 1.0, 1.0], [1.0, 1.0, 1.0]);
    }
}
