//! The five-stage threaded pipeline of Figure 9, single-rank version:
//! load → filter → back-project → store, with span tracing (Figure 10).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use scalefbp_backproject::TextureWindow;
use scalefbp_exec::{Executor, LaunchDescriptor};
use scalefbp_faults::{
    retry_with_backoff, BackoffPolicy, FaultInject, FaultInjector, FaultPlan, RecoveryEvent,
    RecoveryLog,
};
use scalefbp_filter::FilterPipeline;
use scalefbp_geom::{ProjectionMatrix, ProjectionStack, SubVolumeTask, Volume};
use scalefbp_gpusim::DeviceCounters;
use scalefbp_iosim::StorageEndpoint;
use scalefbp_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use scalefbp_pipeline::{BoundedQueue, PipelineModel, TraceCollector};

use crate::{FdkConfig, OutOfCoreReconstructor, ReconstructionError};

/// Modelled host bandwidths feeding the deterministic timing model
/// (bytes/second). The wall-clock trace depends on the scheduler; the
/// model trace replays the same batches through [`PipelineModel`] with
/// these calibration constants so two runs export identical timelines.
const MODEL_HOST_LOAD_BW: f64 = 8.0e9;
const MODEL_FILTER_BW: f64 = 2.0e9;
const MODEL_STORE_BW: f64 = 6.0e9;

/// Outcome statistics of a pipelined run.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Recorded stage spans (wall-clock seconds from run start).
    pub trace: TraceCollector,
    /// Deterministic model-time timeline: the same batches replayed
    /// through the Figure 9 queue recurrence with modelled stage
    /// durations. This is what `--trace-out` exports — byte-identical
    /// across runs, unlike the wall-clock `trace`.
    pub model_trace: TraceCollector,
    /// Device traffic counters.
    pub device: DeviceCounters,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// Bottleneck-stage busy time over makespan (1.0 = perfectly hidden).
    pub overlap_efficiency: f64,
    /// Recovery actions taken (device/IO retries), canonically ordered.
    /// Empty for a fault-free run. Also absorbed into `trace`.
    pub recovery: Vec<RecoveryEvent>,
    /// Snapshot of every metric the run recorded (device, storage and
    /// pipeline counters) — deterministic, exported by `--metrics-out`.
    pub metrics: MetricsSnapshot,
}

/// Cached `retry.backoff.*` counter handles shared by every transient
/// retry loop of a run: total retry attempts and the accumulated
/// deterministic model backoff delay (accounted, never slept).
struct RetryCounters {
    attempts: Counter,
    delay_millis: Counter,
}

impl RetryCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        RetryCounters {
            attempts: registry.counter("retry.backoff.attempts"),
            delay_millis: registry.counter("retry.backoff.delay_millis"),
        }
    }

    fn on_retry(&self, delay_millis: u64) {
        self.attempts.inc();
        self.delay_millis.add(delay_millis);
    }
}

/// Transient device/IO faults funnel through the shared
/// [`BackoffPolicy::transient`] budget. Injected faults are one-shot per
/// scheduled operation, so a retry normally succeeds on the second
/// attempt; the budget catches a misconfigured plan that would spin.
fn h2d_with_retry(
    exec: &dyn Executor,
    bytes: u64,
    rank: usize,
    recovery: &RecoveryLog,
    retries: &RetryCounters,
) -> f64 {
    retry_with_backoff(
        BackoffPolicy::transient(),
        |_| exec.h2d(None, bytes),
        |attempt, delay, _e| {
            retries.on_retry(delay);
            recovery.record(RecoveryEvent::DeviceRetry {
                rank,
                op: "h2d".to_string(),
                attempt,
            });
        },
    )
    .unwrap_or_else(|e| panic!("h2d retry budget exhausted: {e}"))
}

fn d2h_with_retry(
    exec: &dyn Executor,
    bytes: u64,
    rank: usize,
    recovery: &RecoveryLog,
    retries: &RetryCounters,
) -> f64 {
    retry_with_backoff(
        BackoffPolicy::transient(),
        |_| exec.d2h(None, bytes),
        |attempt, delay, _e| {
            retries.on_retry(delay);
            recovery.record(RecoveryEvent::DeviceRetry {
                rank,
                op: "d2h".to_string(),
                attempt,
            });
        },
    )
    .unwrap_or_else(|e| panic!("d2h retry budget exhausted: {e}"))
}

fn storage_read_with_retry(
    storage: &StorageEndpoint,
    bytes: u64,
    rank: usize,
    recovery: &RecoveryLog,
    retries: &RetryCounters,
) -> f64 {
    retry_with_backoff(
        BackoffPolicy::transient(),
        |_| storage.try_record_read(bytes),
        |attempt, delay, _e| {
            retries.on_retry(delay);
            recovery.record(RecoveryEvent::IoRetry {
                rank,
                what: "projection batch".to_string(),
                attempt,
            });
        },
    )
    .unwrap_or_else(|e| panic!("storage read retry budget exhausted: {e}"))
}

/// The end-to-end threaded pipeline (Figure 9): one thread per stage,
/// bounded FIFO queues between stages, the same streaming plan as
/// [`OutOfCoreReconstructor`] — but with loading, filtering,
/// back-projection and storing overlapped, which is what turns the sum of
/// stage times into (roughly) their maximum (Figure 10).
pub struct PipelinedReconstructor {
    config: FdkConfig,
    nb: usize,
    window_rows: usize,
}

impl PipelinedReconstructor {
    /// Plans the pipeline (same working-set planning as the out-of-core
    /// reconstructor).
    pub fn new(config: FdkConfig) -> Result<Self, ReconstructionError> {
        let planner = OutOfCoreReconstructor::new(config.clone())?;
        Ok(PipelinedReconstructor {
            nb: planner.nb(),
            window_rows: planner.window_rows(),
            config,
        })
    }

    /// Slab thickness per batch.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Runs the pipelined reconstruction. Numerically identical to
    /// [`crate::fdk_reconstruct_with`] (same kernels, same order), just
    /// overlapped across threads.
    pub fn reconstruct(
        &self,
        projections: &ProjectionStack,
    ) -> Result<(Volume, PipelineReport), ReconstructionError> {
        self.reconstruct_with_faults(projections, &FaultPlan::none(), 0, None)
    }

    /// [`reconstruct`](Self::reconstruct) under a fault plan: the
    /// simulated device and the optional storage endpoint consult the
    /// plan's injector (as world rank `rank`), and every injected
    /// transfer/OOM/read error is retried — each retry lands in the
    /// report's [`RecoveryLog`]-backed `recovery` list and in the trace.
    /// With `FaultPlan::none()` this is exactly the fault-free path, so
    /// recovered runs compare bit-for-bit against it.
    pub fn reconstruct_with_faults(
        &self,
        projections: &ProjectionStack,
        plan: &FaultPlan,
        rank: usize,
        storage: Option<&StorageEndpoint>,
    ) -> Result<(Volume, PipelineReport), ReconstructionError> {
        self.reconstruct_observed(projections, plan, rank, storage, MetricsRegistry::new())
    }

    /// [`reconstruct_with_faults`](Self::reconstruct_with_faults) with
    /// every counter recorded into a caller-supplied registry. The device
    /// reports rank-labelled `gpu.*` metrics into it, the pipeline adds
    /// `pipeline.*` counters, and the report carries the final snapshot;
    /// pass the registry a [`StorageEndpoint`] was built with to collect
    /// `io.*` traffic in the same snapshot.
    pub fn reconstruct_observed(
        &self,
        projections: &ProjectionStack,
        plan: &FaultPlan,
        rank: usize,
        storage: Option<&StorageEndpoint>,
        registry: MetricsRegistry,
    ) -> Result<(Volume, PipelineReport), ReconstructionError> {
        let g = &self.config.geometry;
        if projections.nv() != g.nv || projections.np() != g.np || projections.nu() != g.nu {
            return Err(ReconstructionError::ShapeMismatch(format!(
                "projections {}×{}×{} vs geometry {}×{}×{}",
                projections.nv(),
                projections.np(),
                projections.nu(),
                g.nv,
                g.np,
                g.nu
            )));
        }

        let injector = FaultInjector::new(plan.clone());
        let recovery = RecoveryLog::new();
        let exec = self.config.build_executor(
            injector.clone() as Arc<dyn FaultInject>,
            rank,
            registry.clone(),
        )?;
        let storage =
            storage.map(|s| s.with_fault_injector(injector as Arc<dyn FaultInject>, rank));
        let filter = FilterPipeline::new(g, self.config.window);
        let scale = filter.backprojection_scale() as f32;
        let mats = ProjectionMatrix::full_scan(g);
        let decomp = scalefbp_geom::VolumeDecomposition::full(g, self.nb);
        let tasks: Vec<SubVolumeTask> = decomp.tasks().to_vec();

        let trace = TraceCollector::new();
        let t0 = Instant::now();
        let now = move || t0.elapsed().as_secs_f64();

        let retry_counters = RetryCounters::new(&registry);
        let batches_done = registry.rank_counter("pipeline.batches", rank);
        let rows_loaded = registry.rank_counter("pipeline.rows.loaded", rank);
        let kernel_updates = registry.rank_counter("pipeline.kernel.updates", rank);
        // Modelled per-batch stage durations (seconds), indexed by
        // `task.index`; replayed through the DES after the threads join.
        let model_secs = Mutex::new(vec![[0.0f64; 4]; tasks.len()]);

        // Queues of Figure 9 (load→filter, filter→bp, bp→store).
        let (q1_tx, q1_rx) = BoundedQueue::<(SubVolumeTask, ProjectionStack)>::new(2).split();
        let (q2_tx, q2_rx) = BoundedQueue::<(SubVolumeTask, ProjectionStack)>::new(2).split();
        let (q3_tx, q3_rx) = BoundedQueue::<Volume>::new(2).split();

        let mut out = Volume::zeros(g.nx, g.ny, g.nz);

        std::thread::scope(|scope| {
            // Load thread: pulls each batch's *differential* row block.
            let load_trace = trace.clone();
            let load_tasks = tasks.clone();
            let load_storage = storage.clone();
            let load_recovery = &recovery;
            let load_retries = &retry_counters;
            let load_model = &model_secs;
            scope.spawn(move || {
                for task in load_tasks {
                    let start = now();
                    let r = task.new_rows;
                    let bytes = (r.len() * g.np * g.nu * 4) as u64;
                    let secs = if let Some(st) = &load_storage {
                        // Model (and fault-inject) the read from storage.
                        storage_read_with_retry(st, bytes, rank, load_recovery, load_retries)
                    } else {
                        bytes as f64 / MODEL_HOST_LOAD_BW
                    };
                    rows_loaded.add(r.len() as u64);
                    load_model.lock().unwrap()[task.index][0] = secs;
                    let window = projections.extract_window(r.begin, r.end, 0, g.np);
                    load_trace.record("load", task.index, start, now());
                    if q1_tx.push((task, window)).is_err() {
                        return;
                    }
                }
            });

            // Filter thread (CPU, Equation 2).
            let filter_trace = trace.clone();
            let filter_ref = &filter;
            let filter_choice = self.config.filter;
            let filter_exec = Arc::clone(&exec);
            let filter_model = &model_secs;
            scope.spawn(move || {
                while let Ok((task, mut window)) = q1_rx.pop() {
                    let start = now();
                    filter_exec
                        .filter_stack(filter_ref, filter_choice, &mut window)
                        .unwrap_or_else(|e| panic!("filter stage failed: {e}"));
                    let bytes = (window.nv() * window.np() * window.nu() * 4) as f64;
                    filter_model.lock().unwrap()[task.index][1] = bytes / MODEL_FILTER_BW;
                    filter_trace.record("filter", task.index, start, now());
                    if q2_tx.push((task, window)).is_err() {
                        return;
                    }
                }
            });

            // Back-projection thread (the simulated GPU).
            let bp_trace = trace.clone();
            let bp_exec = Arc::clone(&exec);
            let bp_recovery = &recovery;
            let bp_retries = &retry_counters;
            let mats_ref = &mats;
            let window_rows = self.window_rows;
            let kernel_choice = self.config.kernel;
            let bp_model = &model_secs;
            scope.spawn(move || {
                let mut tex = TextureWindow::new(window_rows, g.np, g.nu, 0);
                while let Ok((task, rows)) = q2_rx.pop() {
                    let start = now();
                    let r = task.new_rows;
                    let mut device_secs = 0.0;
                    if !r.is_empty() {
                        device_secs += h2d_with_retry(
                            bp_exec.as_ref(),
                            (r.len() * g.np * g.nu * 4) as u64,
                            rank,
                            bp_recovery,
                            bp_retries,
                        );
                        tex.write_rows(rows.data(), r.begin, r.end);
                    }
                    let mut slab = Volume::zeros_slab(g.nx, g.ny, task.nz(), task.z_begin);
                    let stats = bp_exec
                        .backproject_window(kernel_choice, &tex, mats_ref, &mut slab)
                        .unwrap_or_else(|e| panic!("back-projection stage failed: {e}"));
                    kernel_updates.add(stats.updates);
                    device_secs += bp_exec
                        .launch(&LaunchDescriptor::backprojection(stats.updates))
                        .unwrap_or_else(|e| panic!("back-projection launch rejected: {e}"));
                    device_secs += d2h_with_retry(
                        bp_exec.as_ref(),
                        (slab.len() * 4) as u64,
                        rank,
                        bp_recovery,
                        bp_retries,
                    );
                    for v in slab.data_mut() {
                        *v *= scale;
                    }
                    bp_model.lock().unwrap()[task.index][2] = device_secs;
                    batches_done.inc();
                    bp_trace.record("bp", task.index, start, now());
                    if q3_tx.push(slab).is_err() {
                        return;
                    }
                }
            });

            // Store thread: assembles the output volume.
            let store_trace = trace.clone();
            let out_ref = &mut out;
            let store_model = &model_secs;
            scope.spawn(move || {
                let mut item = 0usize;
                while let Ok(slab) = q3_rx.pop() {
                    let start = now();
                    store_model.lock().unwrap()[item][3] = (slab.len() * 4) as f64 / MODEL_STORE_BW;
                    out_ref.paste_slab(&slab);
                    store_trace.record("store", item, start, now());
                    item += 1;
                }
            });
        });

        // Replay the batches through the deterministic queue recurrence:
        // same stage order and queue capacity as the real threads, but on
        // modelled durations, so the exported timeline is reproducible.
        let durations = model_secs.into_inner().unwrap();
        let stage_rows: Vec<Vec<f64>> = (0..4)
            .map(|s| durations.iter().map(|d| d[s]).collect())
            .collect();
        let (model_trace, model_makespan) =
            PipelineModel::new(&["load", "filter", "bp", "store"], stage_rows)
                .with_queue_capacity(2)
                .simulate();
        model_trace.absorb_recovery_log(&recovery);
        registry
            .rank_gauge("pipeline.model.makespan_secs", rank)
            .set(model_makespan);

        trace.absorb_recovery_log(&recovery);
        let report = PipelineReport {
            overlap_efficiency: trace.overlap_efficiency(),
            trace,
            model_trace,
            device: exec.counters(),
            wall_secs: t0.elapsed().as_secs_f64(),
            recovery: recovery.events(),
            metrics: registry.snapshot(),
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdk_reconstruct;
    use scalefbp_geom::CbctGeometry;
    use scalefbp_gpusim::DeviceSpec;
    use scalefbp_phantom::{forward_project, uniform_ball};

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(32, 48, 64, 56)
    }

    #[test]
    fn pipelined_matches_in_core_bitwise() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let reference = fdk_reconstruct(&g, &p).unwrap();
        let rec = PipelinedReconstructor::new(FdkConfig::new(g.clone())).unwrap();
        let (vol, report) = rec.reconstruct(&p).unwrap();
        assert_eq!(vol.data(), reference.data());
        assert!(report.wall_secs > 0.0);
        // All four stages ran for every batch.
        let spans = report.trace.spans();
        let batches = g.nz.div_ceil(rec.nb());
        for stage in ["load", "filter", "bp", "store"] {
            let count = spans.iter().filter(|s| s.stage == stage).count();
            assert_eq!(count, batches, "stage {stage}");
        }
    }

    #[test]
    fn stages_overlap_in_wall_time() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let rec = PipelinedReconstructor::new(FdkConfig::new(g)).unwrap();
        // Wall-clock overlap can be starved when other test binaries
        // saturate the machine; retry a few times before declaring the
        // pipeline serialised.
        let mut last = (0.0, 0.0);
        for _ in 0..5 {
            let (_, report) = rec.reconstruct(&p).unwrap();
            // The serialised sum of stage busy times must exceed the
            // makespan (i.e. some overlap happened).
            let total_busy: f64 = report
                .trace
                .stages()
                .iter()
                .map(|s| report.trace.stage_busy(s))
                .sum();
            let makespan = report.trace.makespan();
            assert!(report.overlap_efficiency <= 1.0 + 1e-9);
            if total_busy > makespan * 1.05 && report.overlap_efficiency > 0.2 {
                return;
            }
            last = (total_busy, makespan);
        }
        panic!("no overlap: busy {} vs makespan {}", last.0, last.1);
    }

    #[test]
    fn blocked_kernel_and_fused_filter_pipeline_stays_valid() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let reference = fdk_reconstruct(&g, &p).unwrap();
        // Blocked kernel alone: still bit-identical to the in-core path.
        let rec = PipelinedReconstructor::new(
            FdkConfig::new(g.clone()).with_kernel(crate::KernelChoice::Blocked),
        )
        .unwrap();
        let (vol, report) = rec.reconstruct(&p).unwrap();
        assert_eq!(vol.data(), reference.data());
        // The rank-0 kernel counter saw every update exactly once.
        assert_eq!(
            report.metrics.counter("pipeline.kernel.updates", Some(0)),
            Some(g.voxel_updates() as u64)
        );
        // Fused filter on top: no longer bitwise, but tightly bounded.
        let fused = PipelinedReconstructor::new(
            FdkConfig::new(g.clone())
                .with_kernel(crate::KernelChoice::Blocked)
                .with_filter(crate::FilterChoice::Fused),
        )
        .unwrap();
        let (fvol, _) = fused.reconstruct(&p).unwrap();
        let mut max = 0.0f32;
        for (a, b) in fvol.data().iter().zip(reference.data()) {
            max = max.max((a - b).abs());
        }
        assert!(max < 1e-4, "fused deviation {max}");
    }

    #[test]
    fn device_counters_match_out_of_core_path() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let cfg = FdkConfig::new(g.clone()).with_device(DeviceSpec::tiny(
            (g.projection_bytes() + g.volume_bytes()) as u64 / 2,
        ));
        let ooc = crate::OutOfCoreReconstructor::new(cfg.clone()).unwrap();
        let (_, ooc_report) = ooc.reconstruct(&p).unwrap();
        let pipe = PipelinedReconstructor::new(cfg).unwrap();
        let (_, pipe_report) = pipe.reconstruct(&p).unwrap();
        assert_eq!(pipe_report.device.h2d_bytes, ooc_report.device.h2d_bytes);
        assert_eq!(pipe_report.device.d2h_bytes, ooc_report.device.d2h_bytes);
        assert_eq!(
            pipe_report.device.kernel_updates,
            ooc_report.device.kernel_updates
        );
    }

    #[test]
    fn cpu_backend_pipeline_is_bit_identical() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let reference = fdk_reconstruct(&g, &p).unwrap();
        let rec =
            PipelinedReconstructor::new(FdkConfig::new(g).with_backend(crate::BackendChoice::Cpu))
                .unwrap();
        let (vol, report) = rec.reconstruct(&p).unwrap();
        assert_eq!(vol.data(), reference.data());
        assert!(report.device.h2d_bytes > 0);
        assert_eq!(report.device.transfer_secs, 0.0);
        assert_eq!(report.device.kernel_secs, 0.0);
    }

    #[test]
    fn ascii_timeline_renders() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let rec = PipelinedReconstructor::new(FdkConfig::new(g)).unwrap();
        let (_, report) = rec.reconstruct(&p).unwrap();
        let art = report.trace.render_ascii(60);
        assert!(art.contains("load"));
        assert!(art.contains("store"));
    }

    #[test]
    fn observed_run_exports_deterministic_trace_and_metrics() {
        let g = geom();
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let rec = PipelinedReconstructor::new(FdkConfig::new(g.clone())).unwrap();
        let run = || {
            let registry = MetricsRegistry::new();
            let storage =
                StorageEndpoint::with_observability("pfs", 2.0e9, 1.5e9, None, registry.clone());
            let (_, report) = rec
                .reconstruct_observed(&p, &FaultPlan::none(), 0, Some(&storage), registry)
                .unwrap();
            (report.model_trace.to_chrome_trace(), report.metrics)
        };
        let (trace_a, metrics_a) = run();
        let (trace_b, metrics_b) = run();
        // Byte-identical across runs: the model trace and the snapshot
        // depend only on the inputs, never on thread scheduling.
        assert_eq!(trace_a, trace_b);
        assert_eq!(metrics_a.to_json(), metrics_b.to_json());
        let summary = scalefbp_obs::validate_chrome_trace(&trace_a).unwrap();
        assert!(summary.spans > 0);
        scalefbp_obs::validate_metrics_json(&metrics_a.to_json()).unwrap();
        // One snapshot carries pipeline, device and storage traffic.
        let batches = g.nz.div_ceil(rec.nb()) as u64;
        assert_eq!(
            metrics_a.counter("pipeline.batches", Some(0)),
            Some(batches)
        );
        assert!(metrics_a.counter("gpu.d2h.bytes", Some(0)).unwrap() > 0);
        assert!(metrics_a.counter("io.pfs.read.bytes", None).unwrap() > 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = geom();
        let rec = PipelinedReconstructor::new(FdkConfig::new(g.clone())).unwrap();
        let bad = ProjectionStack::zeros(g.nv, g.np + 1, g.nu);
        assert!(matches!(
            rec.reconstruct(&bad),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }
}
