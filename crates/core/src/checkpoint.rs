//! Glue between the reconstruction drivers and `scalefbp-ckpt`: config
//! fingerprinting and the slab byte encoding the drivers checkpoint with.

use scalefbp_ckpt::fingerprint;
use scalefbp_geom::Volume;

use crate::{FdkConfig, ReconstructionError};

/// Canonical fingerprint of everything that determines a run's output
/// bits: the full geometry, filtering, batching, kernel and reduction
/// choices, plus a `driver` tag (e.g. `outofcore`, `distributed:4x2`) so
/// a checkpoint written by one driver shape is never resumed by another.
pub fn config_fingerprint(config: &FdkConfig, driver: &str) -> u64 {
    let g = &config.geometry;
    let canonical = format!(
        "driver={driver};dso={};dsd={};np={};nu={};nv={};du={};dv={};\
         nx={};ny={};nz={};dx={};dy={};dz={};su={};sv={};scor={};\
         window={:?};nc={};device={};kernel={};filter={};reduce={}",
        g.dso,
        g.dsd,
        g.np,
        g.nu,
        g.nv,
        g.du,
        g.dv,
        g.nx,
        g.ny,
        g.nz,
        g.dx,
        g.dy,
        g.dz,
        g.sigma_u,
        g.sigma_v,
        g.sigma_cor,
        config.window,
        config.nc,
        config.device.name,
        config.kernel.name(),
        config.filter.name(),
        config.reduce_mode.name(),
    );
    fingerprint(&canonical)
}

/// Encodes a slab volume's voxels as the little-endian f32 payload the
/// checkpoint store seals. The z-range is carried by the manifest key,
/// not the payload.
pub fn slab_to_bytes(slab: &Volume) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(slab.len() * 4);
    for v in slab.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Decodes a checkpointed payload back into a slab at `z = (z0, z1)` of
/// an `nx × ny` volume.
pub fn slab_from_bytes(
    nx: usize,
    ny: usize,
    z: (usize, usize),
    bytes: &[u8],
) -> Result<Volume, ReconstructionError> {
    let nz = z.1 - z.0;
    if bytes.len() != nx * ny * nz * 4 {
        return Err(ReconstructionError::Checkpoint(format!(
            "slab {}..{} payload is {} B, expected {}",
            z.0,
            z.1,
            bytes.len(),
            nx * ny * nz * 4
        )));
    }
    let mut slab = Volume::zeros_slab(nx, ny, nz, z.0);
    for (dst, src) in slab.data_mut().iter_mut().zip(bytes.chunks_exact(4)) {
        *dst = f32::from_le_bytes([src[0], src[1], src[2], src[3]]);
    }
    Ok(slab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_geom::CbctGeometry;

    #[test]
    fn fingerprint_separates_configs_and_drivers() {
        let cfg = FdkConfig::new(CbctGeometry::ideal(16, 8, 24, 20));
        let base = config_fingerprint(&cfg, "outofcore");
        assert_eq!(base, config_fingerprint(&cfg, "outofcore"));
        assert_ne!(base, config_fingerprint(&cfg, "distributed:2x2"));
        let other = FdkConfig::new(CbctGeometry::ideal(16, 8, 24, 20)).with_nc(3);
        assert_ne!(base, config_fingerprint(&other, "outofcore"));
    }

    #[test]
    fn slab_bytes_round_trip() {
        let mut slab = Volume::zeros_slab(3, 4, 2, 7);
        for (i, v) in slab.data_mut().iter_mut().enumerate() {
            *v = i as f32 * 0.25 - 3.0;
        }
        let bytes = slab_to_bytes(&slab);
        let back = slab_from_bytes(3, 4, (7, 9), &bytes).unwrap();
        assert_eq!(back.data(), slab.data());
        assert_eq!(back.z_offset(), 7);
        assert!(slab_from_bytes(3, 4, (7, 10), &bytes).is_err());
    }
}
