//! Fault-tolerant distributed reconstruction.
//!
//! [`distributed_reconstruct`](crate::distributed_reconstruct) assumes a
//! perfectly reliable world: its group collectives deadlock the moment a
//! rank dies and its point-to-point receives block forever on a lost
//! message. This module re-runs the same decomposition under an explicit
//! failure model ([`scalefbp_faults::FaultPlan`]) with a recovery
//! protocol built from three ingredients:
//!
//! 1. **Chunked point-to-point reduction.** Instead of the hierarchical
//!    segmented reduce, each worker ships its partial sub-volume (one
//!    *chunk* per batch) to the group leader, which accumulates chunks in
//!    a fixed rank order. The fixed order makes the summation bitwise
//!    reproducible no matter when — or on which surviving rank — a chunk
//!    was produced.
//! 2. **Timeout + retry-with-backoff failure detection.** Every awaited
//!    message has a deadline; deadlines double per attempt. A peer that
//!    misses all attempts is declared dead and its outstanding work is
//!    re-queued onto surviving ranks of the same group (workers first,
//!    the leader as a last resort). Because a lost message and a dead
//!    sender are indistinguishable to a timeout detector, a dropped chunk
//!    is handled the same way — recomputation yields identical bits, so
//!    correctness never depends on telling the two apart.
//! 3. **Leader takeover.** When a group *leader* dies, the root promotes
//!    the next surviving rank of that group to deputy leader
//!    (degrading the leader set), which recomputes and ships the group's
//!    slabs. With no survivors the root recomputes the group itself.
//!
//! Every recovery decision is appended to a [`RecoveryLog`]; with the
//! same seed (hence the same [`FaultPlan`]) the log is identical across
//! runs. Rank 0 is the recovery coordinator and must not be targeted by
//! rank-failure events ([`FaultPlan::generate`] never does).

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use scalefbp_ckpt::{CheckpointSpec, CheckpointStore};
use scalefbp_exec::{Executor, FilterChoice, KernelChoice};
use scalefbp_faults::{
    BackoffPolicy, Channel, FaultInject, FaultInjector, FaultKind, FaultPlan, NoFaults,
    RecoveryEvent, RecoveryLog,
};
use scalefbp_filter::FilterPipeline;
use scalefbp_geom::{
    CbctGeometry, ProjectionMatrix, ProjectionStack, RankLayout, SubVolumeTask, Volume,
    VolumeDecomposition,
};
use scalefbp_iosim::StorageEndpoint;
use scalefbp_mpisim::{
    segment_partition, CommError, Communicator, NetworkStats, ReduceMode, World,
};
use scalefbp_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use scalefbp_perfmodel::{MachineParams, PerfModel, RunShape};
use scalefbp_pipeline::TraceCollector;

use crate::checkpoint::{config_fingerprint, slab_from_bytes, slab_to_bytes};
use crate::{FdkConfig, ReconstructionError};

/// Worker → leader partial sub-volume, tag + batch index.
const CHUNK_TAG: u64 = 20_000;
/// Recomputed chunk (survivor → leader), tag + `b·nr + j` — the tag
/// encodes *which* rank's chunk was recomputed, so a late speculative
/// reply for `(b, j)` can never satisfy a wait for a different chunk of
/// the same batch. Duplicates on one tag are bitwise-identical pure
/// recomputes, so consuming either copy yields the same fold.
const RECHUNK_TAG: u64 = 30_000;
/// Leader → worker recompute request.
const CTRL_TAG: u64 = 40_000;
/// Root → deputy leader takeover order.
const TAKEOVER_TAG: u64 = 41_000;
/// Root → everyone: the world is done (reliable control plane).
const SHUTDOWN_TAG: u64 = 42_000;
/// Leader → root finished slab, tag + slab z offset.
const SLAB_TAG: u64 = 7_000;
/// Deputy → root finished slab after takeover, tag + slab z offset.
const TAKEOVER_SLAB_TAG: u64 = 50_000;
/// Segmented-mode worker → leader chunk *piece*, tag + `b·nr + segment`.
/// In [`ReduceMode::Segmented`] each per-batch chunk travels as one
/// message per z-segment so faults can land mid-reduce-scatter; the
/// leader reassembles the pieces before the (unchanged) fixed-order fold,
/// and recovery resends are always whole chunks ([`RECHUNK_TAG`]).
const SEGPIECE_TAG: u64 = 60_000;

/// Floor of the first deadline when a leader awaits a chunk. The actual
/// deadline is derived from the perf-model batch estimate (see
/// [`derive_deadlines`]); this constant only keeps tiny problems — whose
/// modelled batch time is microseconds — at the legacy detection
/// latency. It is **not** a valid deadline on its own: a large volume's
/// honest chunk takes far longer than 500 ms, and waiting a fixed 500 ms
/// would declare every healthy rank dead.
const CHUNK_TIMEOUT: Duration = Duration::from_millis(500);
/// Floor of the first deadline when the root awaits a leader's slab;
/// the derived deadline scales with the modelled time of the *whole
/// group's* work, and is additionally kept above twice the chunk
/// deadline so a leader mid-recovery is never declared dead.
const SLAB_TIMEOUT: Duration = Duration::from_secs(4);
/// Attempts before a peer is declared dead; deadline doubles per attempt.
const MAX_ATTEMPTS: u32 = 2;
/// Poll interval of the worker serve loop and of the leader's
/// alternating original/speculative polls.
const POLL: Duration = Duration::from_millis(20);

/// Per-attempt receive deadline: the derived base deadline doubled per
/// attempt (the legacy exponential ladder), plus deterministic seeded
/// jitter salted by the awaited peer so leaders that share a fault do
/// not re-fire their detectors in lockstep. Jitter only *lengthens* a
/// deadline (bounded at +50%), so delay-only plans stay timeout-free
/// and the ladder's worst case is unchanged in order of magnitude.
fn attempt_deadline(base: Duration, attempt: u32, peer: usize) -> Duration {
    let policy = BackoffPolicy::new(base.as_millis() as u64, MAX_ATTEMPTS);
    Duration::from_millis(policy.delay_millis_jittered(attempt + 1, peer as u64))
}

/// The failure detector's first-attempt deadlines, derived from the
/// performance model instead of hard-coded: the legacy constants were
/// silently wrong for large volumes (an honest 500 ms chunk deadline
/// against a multi-second modelled chunk declares every rank dead).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FtDeadlines {
    /// First deadline when a leader awaits one worker chunk.
    pub chunk: Duration,
    /// First deadline when the root awaits one finished group slab.
    pub slab: Duration,
}

/// Derives the fault-tolerant driver's deadlines from the perf-model
/// batch estimate for this `(config, layout)`: the chunk deadline is
/// `timeout_scale ×` the worst modelled batch steady-state cost, the
/// slab deadline `timeout_scale ×` the modelled cost of the whole
/// group's batches (a leader cannot ship a slab before collecting every
/// chunk of it), both floored at the legacy constants so tiny problems
/// keep their historical detection latency. Pure — no clock, no I/O —
/// so the same config always detects at the same model-derived points.
pub fn derive_deadlines(config: &FdkConfig, layout: RankLayout) -> FtDeadlines {
    let shape = RunShape {
        geom: config.geometry.clone(),
        layout,
    };
    let model = PerfModel::new(MachineParams::abci_v100());
    let batches = model.batch_times_for_mode(&shape, config.reduce_mode);
    let worst = batches
        .iter()
        .map(|b| b.steady_max())
        .fold(0.0_f64, f64::max);
    let group_total: f64 = batches.iter().map(|b| b.steady_max()).sum();
    let chunk = CHUNK_TIMEOUT.max(Duration::from_secs_f64(worst * config.timeout_scale));
    let slab = SLAB_TIMEOUT
        .max(Duration::from_secs_f64(group_total * config.timeout_scale))
        .max(chunk * 2);
    FtDeadlines { chunk, slab }
}

/// Per-group chunk ledger: one slot per `(batch, rank-in-group)`. The
/// first copy offered to a slot wins; later duplicates — a straggler's
/// late original after a speculative win, or a twin recompute — are
/// discarded. Every copy of a chunk is a bitwise-identical pure
/// recompute, so offer order can never change the fixed-order fold.
pub struct ChunkLedger {
    nr: usize,
    slots: Vec<Option<Vec<f32>>>,
    duplicates: u64,
}

impl ChunkLedger {
    /// An empty ledger for `batches × nr` chunk slots.
    pub fn new(batches: usize, nr: usize) -> Self {
        ChunkLedger {
            nr,
            slots: vec![None; batches * nr],
            duplicates: 0,
        }
    }

    /// Offers one copy of chunk `(b, j)`. Returns `true` if the copy was
    /// accepted (first arrival) and `false` if the slot was already
    /// filled and the duplicate discarded.
    pub fn offer(&mut self, b: usize, j: usize, data: Vec<f32>) -> bool {
        let slot = &mut self.slots[b * self.nr + j];
        if slot.is_some() {
            self.duplicates += 1;
            return false;
        }
        *slot = Some(data);
        true
    }

    /// True once chunk `(b, j)` holds a copy.
    pub fn has(&self, b: usize, j: usize) -> bool {
        self.slots[b * self.nr + j].is_some()
    }

    /// Duplicate copies discarded so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Fixed-rank-order fold of batch `b`'s chunks into a scaled slab.
    /// Panics if a slot is still empty — phase 2 guarantees it is not.
    pub fn fold_batch(
        &self,
        b: usize,
        nx: usize,
        ny: usize,
        nz: usize,
        z_begin: usize,
        scale: f32,
    ) -> Volume {
        let mut slab = Volume::zeros_slab(nx, ny, nz, z_begin);
        for j in 0..self.nr {
            let data = self.slots[b * self.nr + j]
                .as_ref()
                .expect("every chunk was recovered");
            for (acc, v) in slab.data_mut().iter_mut().zip(data) {
                *acc += *v;
            }
        }
        for v in slab.data_mut() {
            *v *= scale;
        }
        slab
    }
}

/// The recompute-reply tag for chunk `(b, j)` in a group of `nr` ranks.
fn rechunk_tag(b: usize, j: usize, nr: usize) -> u64 {
    RECHUNK_TAG + (b * nr + j) as u64
}

/// Result of a fault-tolerant distributed run.
#[derive(Clone, Debug)]
pub struct FaultTolerantOutcome {
    /// The assembled volume (gathered at world rank 0).
    pub volume: Volume,
    /// Network traffic observed (all ranks, post-join snapshot).
    pub network: NetworkStats,
    /// Every recovery action taken, canonically ordered. Deterministic
    /// for a given fault plan; empty for a fault-free run.
    pub recovery: Vec<RecoveryEvent>,
    /// Snapshot of the run's metrics registry: per-rank `mpi.*` traffic
    /// and `ft.*` protocol counters — deterministic for a given plan.
    pub metrics: MetricsSnapshot,
}

impl FaultTolerantOutcome {
    /// Chrome-trace JSON of the run's recovery timeline: one instant per
    /// recovery event on the acting rank's `recovery` track, timestamped
    /// by canonical event index (model time, not wall clock) — so the
    /// export is byte-identical across runs of the same fault plan.
    pub fn chrome_trace(&self) -> String {
        let log = RecoveryLog::new();
        for ev in &self.recovery {
            log.record(ev.clone());
        }
        let trace = TraceCollector::new();
        trace.absorb_recovery_log(&log);
        trace.to_chrome_trace()
    }
}

/// Shared read-only state of one rank's protocol role.
struct FtCtx<'a> {
    g: &'a CbctGeometry,
    layout: RankLayout,
    /// This rank (world numbering) — the identity its compute-channel
    /// faults are pinned to.
    me: usize,
    /// The run's fault injector, consulted once per chunk computation on
    /// [`Channel::Compute`] — the slow-device straggler channel.
    injector: Arc<dyn FaultInject>,
    /// Sticky slow-device factor: once a [`FaultKind::SlowDevice`]
    /// fires, this rank's device stays degraded for the rest of the run
    /// (1 = healthy).
    slow_factor: Cell<u32>,
    /// Model-derived failure-detection deadlines for this run.
    deadlines: FtDeadlines,
    projections: &'a ProjectionStack,
    filter: &'a FilterPipeline,
    mats: &'a [ProjectionMatrix],
    recovery: &'a RecoveryLog,
    scale: f32,
    /// The compute backend every chunk runs on, with the configured
    /// kernel and filter strategy. Dispatch is pure, so any rank can
    /// recompute any chunk bit for bit on any backend.
    exec: &'a dyn Executor,
    kernel: KernelChoice,
    filter_mode: FilterChoice,
    /// Wire format of the worker→leader data plane:
    /// [`ReduceMode::Segmented`] ships per-segment pieces, everything
    /// else one message per chunk. The summation order never changes, so
    /// recovered volumes are bitwise identical across modes.
    reduce_mode: ReduceMode,
    /// `ft.chunks.computed`, labelled with this rank — every
    /// [`compute_chunk`](Self::compute_chunk) call, including recoveries.
    chunks_computed: Counter,
    /// `integrity.mpi.failures`, labelled with this rank — every sealed
    /// frame whose CRC failed to verify on receive.
    integrity_failures: Counter,
    /// `ft.chunks.deduped`, labelled with this rank — every duplicate
    /// chunk copy discarded by the ledger (speculation twins).
    chunk_duplicates: Counter,
}

/// Checkpoint wiring handed to the root: storage endpoint, spec, and the
/// config fingerprint the manifest must carry.
type FtCkpt<'a> = (&'a StorageEndpoint, &'a CheckpointSpec, u64);

impl FtCtx<'_> {
    /// The partial sub-volume rank `j` of `group` owes for `task`:
    /// its projection share filtered and back-projected onto the batch
    /// slab. Pure — any rank can recompute any chunk, bit for bit.
    fn compute_chunk(&self, group: usize, task: &SubVolumeTask, j: usize) -> Volume {
        self.chunks_computed.inc();
        // Straggler channel: one compute op per chunk. A fired
        // SlowDevice sticks — this rank's device stays slow for the
        // rest of the run (its onset is pinned by the plan's op index).
        if let Some(FaultKind::SlowDevice { factor, .. }) =
            self.injector.on_op(self.me, Channel::Compute)
        {
            self.slow_factor
                .set(self.slow_factor.get().max(factor.max(1)));
        }
        if self.slow_factor.get() > 1 {
            // Bounded wall-clock realisation of the degraded rate:
            // stall past the leader's first chunk deadline (so the
            // straggler is detected and speculated against) but well
            // inside the second, doubled window (so a slow-but-alive
            // rank's late original still arrives and is deduplicated
            // rather than the rank being declared dead).
            std::thread::sleep((self.deadlines.chunk * 2).min(Duration::from_secs(3)));
        }
        let a = self.layout.assignment(self.g, group * self.layout.nr + j);
        let mut part =
            self.projections
                .extract_window(task.rows.begin, task.rows.end, a.s_begin, a.s_end);
        self.exec
            .filter_stack(self.filter, self.filter_mode, &mut part)
            .expect("filter stage failed");
        let mut slab = Volume::zeros_slab(self.g.nx, self.g.ny, task.nz(), task.z_begin);
        self.exec
            .backproject(
                self.kernel,
                &part,
                &self.mats[a.s_begin..a.s_end],
                &mut slab,
            )
            .expect("back-projection failed");
        slab
    }

    /// A finished (summed + scaled) slab for `task`, recomputed from
    /// scratch in fixed chunk order — the takeover path.
    fn recompute_task(&self, group: usize, task: &SubVolumeTask) -> Volume {
        let mut slab = Volume::zeros_slab(self.g.nx, self.g.ny, task.nz(), task.z_begin);
        for j in 0..self.layout.nr {
            let chunk = self.compute_chunk(group, task, j);
            for (acc, v) in slab.data_mut().iter_mut().zip(chunk.data()) {
                *acc += *v;
            }
        }
        for v in slab.data_mut() {
            *v *= self.scale;
        }
        slab
    }

    fn group_decomp(&self, group: usize) -> VolumeDecomposition {
        let leader = group * self.layout.nr;
        let a = self.layout.assignment(self.g, leader);
        VolumeDecomposition::new(self.g, a.z_begin, a.z_end, a.nb)
    }
}

/// Runs the paper's distributed reconstruction under the given fault
/// plan, recovering from injected rank failures, message drops and
/// stragglers. With `FaultPlan::none()` this is the fault-free baseline
/// the recovered runs are compared against: recomputed chunks are
/// bit-identical and summed in the same fixed order, so a recovered
/// volume equals the fault-free volume bit for bit.
pub fn fault_tolerant_reconstruct(
    config: &FdkConfig,
    layout: RankLayout,
    projections: &ProjectionStack,
    plan: &FaultPlan,
) -> Result<FaultTolerantOutcome, ReconstructionError> {
    fault_tolerant_reconstruct_observed(config, layout, projections, plan, MetricsRegistry::new())
}

/// [`fault_tolerant_reconstruct`] with every counter recorded into a
/// caller-supplied registry: the world's per-rank `mpi.*` traffic plus
/// the protocol's `ft.chunks.computed` per-rank counters. The outcome
/// carries the final snapshot, whose per-rank views merge back to the
/// global aggregate (see [`MetricsSnapshot::rank_view`]).
pub fn fault_tolerant_reconstruct_observed(
    config: &FdkConfig,
    layout: RankLayout,
    projections: &ProjectionStack,
    plan: &FaultPlan,
    registry: MetricsRegistry,
) -> Result<FaultTolerantOutcome, ReconstructionError> {
    ft_run(config, layout, projections, plan, registry, None)
}

/// [`fault_tolerant_reconstruct_observed`] with crash-consistent slab
/// checkpoints committed by the root into `spec.dir` on `endpoint` every
/// `spec.every` slabs. With `spec.resume`, groups whose slabs are all
/// committed are loaded from the checkpoint instead of collected; the
/// resumed volume is bitwise identical to an uninterrupted run under the
/// same fault plan. The chaos harness arms `spec.kill_after_saves` to
/// abort the root mid-run with [`ReconstructionError::Interrupted`] —
/// shutdown is still delivered to every rank, so the world joins cleanly.
pub fn fault_tolerant_reconstruct_checkpointed(
    config: &FdkConfig,
    layout: RankLayout,
    projections: &ProjectionStack,
    plan: &FaultPlan,
    registry: MetricsRegistry,
    endpoint: &StorageEndpoint,
    spec: &CheckpointSpec,
) -> Result<FaultTolerantOutcome, ReconstructionError> {
    let fp = config_fingerprint(
        config,
        &format!("distributed:nr={},ng={}", layout.nr, layout.ng),
    );
    ft_run(
        config,
        layout,
        projections,
        plan,
        registry,
        Some((endpoint, spec, fp)),
    )
}

fn ft_run(
    config: &FdkConfig,
    layout: RankLayout,
    projections: &ProjectionStack,
    plan: &FaultPlan,
    registry: MetricsRegistry,
    ckpt: Option<FtCkpt>,
) -> Result<FaultTolerantOutcome, ReconstructionError> {
    config.validate()?;
    let g = &config.geometry;
    if projections.nv() != g.nv || projections.np() != g.np || projections.nu() != g.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            g.nv,
            g.np,
            g.nu
        )));
    }
    assert!(
        g.nz >= layout.ng,
        "more groups ({}) than volume slices ({})",
        layout.ng,
        g.nz
    );

    let injector = FaultInjector::new(plan.clone());
    let recovery = RecoveryLog::new();
    let window = config.window;
    let deadlines = derive_deadlines(config, layout);
    // One compute backend shared by every rank: dispatch is pure, and
    // its accounting stays out of the run's registry (as before the
    // executor refactor, the FT protocol records no `gpu.*` metrics).
    let exec = config.build_executor(Arc::new(NoFaults), 0, MetricsRegistry::new())?;
    let exec_ref = &exec;
    let recovery_ref = &recovery;
    let registry_ref = &registry;
    let injector_ref = &injector;
    let (results, network) = World::run_with_observability(
        layout.num_ranks(),
        injector.clone() as Arc<dyn FaultInject>,
        registry.clone(),
        |mut comm| {
            let filter = FilterPipeline::new(g, window);
            let mats = ProjectionMatrix::full_scan(g);
            let ctx = FtCtx {
                g,
                layout,
                me: comm.rank(),
                injector: injector_ref.clone() as Arc<dyn FaultInject>,
                slow_factor: Cell::new(1),
                deadlines,
                projections,
                filter: &filter,
                mats: &mats,
                recovery: recovery_ref,
                scale: filter.backprojection_scale() as f32,
                exec: exec_ref.as_ref(),
                kernel: config.kernel,
                filter_mode: config.filter,
                reduce_mode: config.reduce_mode,
                chunks_computed: registry_ref.rank_counter("ft.chunks.computed", comm.rank()),
                integrity_failures: registry_ref
                    .rank_counter("integrity.mpi.failures", comm.rank()),
                chunk_duplicates: registry_ref.rank_counter("ft.chunks.deduped", comm.rank()),
            };
            let assign = layout.assignment(g, comm.rank());
            if comm.rank() == 0 {
                Some(ft_root(&mut comm, &ctx, ckpt))
            } else if assign.is_group_leader {
                ft_leader(&mut comm, &ctx);
                None
            } else {
                ft_worker(&mut comm, &ctx);
                None
            }
        },
    );

    let volume = results
        .into_iter()
        .next()
        .flatten()
        .expect("rank 0 must assemble the volume")?;
    Ok(FaultTolerantOutcome {
        volume,
        network,
        recovery: recovery.events(),
        metrics: registry.snapshot(),
    })
}

/// Terminal state of a rank killed by injection: consume (and discard)
/// traffic until the root's shutdown arrives, so no sender ever blocks
/// on a full mailbox and no late message hits a closed channel.
fn dead_wait(comm: &mut Communicator) {
    comm.drain_until(0, SHUTDOWN_TAG);
}

/// Blocks until the root announces shutdown; any error (including a
/// fault injected on the delivery itself) simply ends the rank.
fn shutdown_wait(comm: &mut Communicator) {
    let _ = comm.recv_timeout(0, SHUTDOWN_TAG, Duration::from_secs(60));
}

fn ft_worker(comm: &mut Communicator, ctx: &FtCtx) {
    let assign = ctx.layout.assignment(ctx.g, comm.rank());
    let leader = assign.group * ctx.layout.nr;
    let decomp = ctx.group_decomp(assign.group);

    for (b, task) in decomp.tasks().iter().enumerate() {
        let chunk = ctx.compute_chunk(assign.group, task, assign.rank_in_group);
        send_chunk(comm, ctx, leader, b, task, &chunk);
        if comm.self_failed() {
            return dead_wait(comm);
        }
    }

    // Serve loop: recompute requests from the leader, takeover orders
    // from the root, until shutdown. Polling never touches the fault
    // injector (only deliveries do), so op counts stay deterministic.
    loop {
        match comm.recv_timeout(leader, CTRL_TAG, POLL) {
            Ok(payload) => {
                let (b, j) = decode_ctrl(&payload);
                let chunk = ctx.compute_chunk(assign.group, &decomp.tasks()[b], j);
                let _ =
                    comm.send_f32_checked(leader, rechunk_tag(b, j, ctx.layout.nr), chunk.data());
                if comm.self_failed() {
                    return dead_wait(comm);
                }
            }
            Err(CommError::Timeout { .. }) => {}
            Err(_) => return dead_wait(comm),
        }
        match comm.recv_timeout(0, TAKEOVER_TAG, POLL) {
            Ok(payload) => {
                let group = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
                ft_takeover(comm, ctx, group);
                if comm.self_failed() {
                    return dead_wait(comm);
                }
            }
            Err(CommError::Timeout { .. }) => {}
            Err(_) => return dead_wait(comm),
        }
        match comm.recv_timeout(0, SHUTDOWN_TAG, POLL) {
            Ok(_) => return,
            Err(CommError::Timeout { .. }) => {}
            Err(_) => return dead_wait(comm),
        }
    }
}

/// Ships one computed chunk to the group leader. In dense/hierarchical
/// mode that is a single message; in segmented mode the chunk travels as
/// one piece per non-empty z-segment (tags `SEGPIECE_TAG + b·nr + s`),
/// so an injected fault can kill or delay a rank *between* pieces —
/// mid-reduce-scatter.
fn send_chunk(
    comm: &Communicator,
    ctx: &FtCtx,
    leader: usize,
    b: usize,
    task: &SubVolumeTask,
    chunk: &Volume,
) {
    match ctx.reduce_mode {
        ReduceMode::Segmented => {
            let nr = ctx.layout.nr;
            let stride = ctx.g.nx * ctx.g.ny;
            for (s, part) in segment_partition(task.nz(), nr).iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let _ = comm.send_f32_checked(
                    leader,
                    SEGPIECE_TAG + (b * nr + s) as u64,
                    &chunk.data()[part.start * stride..part.end * stride],
                );
            }
        }
        _ => {
            let _ = comm.send_f32_checked(leader, CHUNK_TAG + b as u64, chunk.data());
        }
    }
}

/// Leader-side receive of one worker chunk in segmented mode: awaits
/// every still-missing piece, reassembling the full chunk once all are
/// present. Pieces already received survive a timeout, so a retry only
/// re-awaits what is actually missing.
fn recv_chunk_pieces(
    comm: &mut Communicator,
    ctx: &FtCtx,
    from: usize,
    b: usize,
    task: &SubVolumeTask,
    pieces: &mut [Option<Vec<f32>>],
    timeout: Duration,
) -> Result<Vec<f32>, CommError> {
    let nr = ctx.layout.nr;
    let stride = ctx.g.nx * ctx.g.ny;
    let parts = segment_partition(task.nz(), nr);
    for (s, part) in parts.iter().enumerate() {
        if part.is_empty() || pieces[s].is_some() {
            continue;
        }
        let piece =
            comm.recv_f32_checked_timeout(from, SEGPIECE_TAG + (b * nr + s) as u64, timeout)?;
        debug_assert_eq!(piece.len(), part.len() * stride, "piece length mismatch");
        pieces[s] = Some(piece);
    }
    let mut data = Vec::with_capacity(task.nz() * stride);
    for (s, part) in parts.iter().enumerate() {
        if !part.is_empty() {
            data.extend_from_slice(pieces[s].as_ref().expect("all pieces received"));
        }
    }
    Ok(data)
}

/// Deputy-leader path: recompute the whole group's slabs (every chunk,
/// fixed order — bitwise identical to what the dead leader would have
/// produced) and ship them to the root.
fn ft_takeover(comm: &mut Communicator, ctx: &FtCtx, group: usize) {
    let decomp = ctx.group_decomp(group);
    for task in decomp.tasks() {
        let slab = ctx.recompute_task(group, task);
        let _ = comm.send_f32_checked(0, TAKEOVER_SLAB_TAG + task.z_begin as u64, slab.data());
    }
}

/// Phase-1 wait for rank `j`'s chunk `b` with straggler speculation. On
/// the *first* missed deadline the sender is suspected slow — not yet
/// dead — and the chunk is speculatively requeued onto a healthy
/// survivor ([`speculation_target`]; the leader itself when the group
/// has no third rank). From then on the leader alternates short polls
/// across both sources: the first copy to land wins the slot, and the
/// loser's twin is discarded by the ledger on arrival (every copy is a
/// bitwise-identical pure recompute, so either yields the same fold).
/// A sender whose original arrives late is slow, not dead; only a
/// sender that misses the whole doubled ladder is declared dead.
/// `Err(())` means this leader was itself killed mid-collection.
#[allow(clippy::too_many_arguments)]
fn await_chunk_speculatively(
    comm: &mut Communicator,
    ctx: &FtCtx,
    group: usize,
    b: usize,
    task: &SubVolumeTask,
    j: usize,
    dead: &mut BTreeSet<usize>,
    ledger: &mut ChunkLedger,
) -> Result<(), ()> {
    let me = comm.rank();
    let nr = ctx.layout.nr;
    let from = group * nr + j;
    // Segmented mode: pieces received before a timeout survive the
    // retry, so only missing pieces are re-awaited.
    let mut pieces: Vec<Option<Vec<f32>>> = match ctx.reduce_mode {
        ReduceMode::Segmented => vec![None; nr],
        _ => Vec::new(),
    };
    let mut spec_from: Option<usize> = None; // world rank owing the speculative copy
    let mut attempt = 0u32;

    loop {
        let window = attempt_deadline(ctx.deadlines.chunk, attempt, from);
        if spec_from.is_none() {
            let received = match ctx.reduce_mode {
                ReduceMode::Segmented => {
                    recv_chunk_pieces(comm, ctx, from, b, task, &mut pieces, window)
                }
                _ => comm.recv_f32_checked_timeout(from, CHUNK_TAG + b as u64, window),
            };
            match received {
                Ok(data) => {
                    ledger.offer(b, j, data);
                    return Ok(());
                }
                // A corrupt frame was consumed and discarded — from here
                // on it is indistinguishable from a dropped message, so
                // it shares the timeout bookkeeping.
                Err(CommError::IntegrityFailure { detail, .. }) => {
                    attempt += 1;
                    ctx.integrity_failures.inc();
                    ctx.recovery.record(RecoveryEvent::CorruptionDetected {
                        rank: me,
                        what: format!("chunk {b} from rank {from}: {detail}"),
                        attempt,
                    });
                }
                Err(CommError::Timeout { .. }) => {
                    attempt += 1;
                    ctx.recovery.record(RecoveryEvent::MessageRetry {
                        rank: me,
                        peer: from,
                        attempt,
                    });
                    // First deadline miss: suspect a straggler and
                    // requeue the chunk speculatively instead of just
                    // waiting the sender out.
                    ctx.recovery.record(RecoveryEvent::StragglerDetected {
                        group,
                        rank: from,
                        chunk: b,
                    });
                    match speculation_target(j, nr, dead) {
                        Some(t) => {
                            let target = group * nr + t;
                            ctx.recovery.record(RecoveryEvent::WorkRequeued {
                                group,
                                from_rank: from,
                                to_rank: target,
                                chunk: b,
                            });
                            comm.send(target, CTRL_TAG, encode_ctrl(b, j));
                            spec_from = Some(target);
                        }
                        None => {
                            // No healthy third rank: the leader is the
                            // speculative executor itself.
                            ctx.recovery.record(RecoveryEvent::WorkRequeued {
                                group,
                                from_rank: from,
                                to_rank: me,
                                chunk: b,
                            });
                            ledger.offer(b, j, ctx.compute_chunk(group, task, j).data().to_vec());
                            ctx.recovery.record(RecoveryEvent::SpeculativeWin {
                                group,
                                chunk: b,
                                winner: me,
                            });
                            spec_from = Some(me);
                        }
                    }
                }
                Err(_) => return Err(()),
            }
        } else {
            // Speculation in flight: alternate short polls across the
            // original and the speculative reply for one doubled
            // window. First arrival wins; the twin is deduplicated.
            let rounds = (window.as_millis() / (2 * POLL.as_millis())).max(1);
            let mut original_landed = false;
            'window: for _ in 0..rounds {
                let received = match ctx.reduce_mode {
                    ReduceMode::Segmented => {
                        recv_chunk_pieces(comm, ctx, from, b, task, &mut pieces, POLL)
                    }
                    _ => comm.recv_f32_checked_timeout(from, CHUNK_TAG + b as u64, POLL),
                };
                match received {
                    Ok(data) => {
                        if !ledger.offer(b, j, data) {
                            // Late original after a speculative win:
                            // consumed and discarded, same bits.
                            ctx.chunk_duplicates.inc();
                        }
                        original_landed = true;
                        break 'window;
                    }
                    Err(CommError::Timeout { .. }) => {}
                    Err(CommError::IntegrityFailure { detail, .. }) => {
                        ctx.integrity_failures.inc();
                        ctx.recovery.record(RecoveryEvent::CorruptionDetected {
                            rank: me,
                            what: format!("chunk {b} from rank {from}: {detail}"),
                            attempt: attempt + 1,
                        });
                    }
                    Err(_) => return Err(()),
                }
                if let Some(target) = spec_from.filter(|&t| t != me) {
                    if !ledger.has(b, j) {
                        match comm.recv_f32_checked_timeout(target, rechunk_tag(b, j, nr), POLL) {
                            Ok(data) => {
                                ledger.offer(b, j, data);
                                ctx.recovery.record(RecoveryEvent::SpeculativeWin {
                                    group,
                                    chunk: b,
                                    winner: target,
                                });
                            }
                            Err(CommError::Timeout { .. }) => {}
                            Err(CommError::IntegrityFailure { detail, .. }) => {
                                ctx.integrity_failures.inc();
                                ctx.recovery.record(RecoveryEvent::CorruptionDetected {
                                    rank: me,
                                    what: format!(
                                        "speculative chunk {b} from rank {target}: {detail}"
                                    ),
                                    attempt: attempt + 1,
                                });
                            }
                            Err(_) => return Err(()),
                        }
                    }
                }
            }
            if original_landed {
                // Slow but alive: no death declaration, ever.
                return Ok(());
            }
            attempt += 1;
            ctx.recovery.record(RecoveryEvent::MessageRetry {
                rank: me,
                peer: from,
                attempt,
            });
        }
        if attempt >= MAX_ATTEMPTS {
            dead.insert(j);
            ctx.recovery.record(RecoveryEvent::RankDeclaredDead {
                group,
                rank: from,
                detected_by: me,
            });
            // If the speculative copy landed the slot is already
            // filled; otherwise phase 2 requeues it.
            return Ok(());
        }
    }
}

/// Group-leader collection: gather every batch's chunks from the group's
/// workers (speculating against stragglers, detecting dead ones),
/// requeue missing chunks onto survivors, then sum in fixed rank order
/// and scale. `None` means this leader was itself killed mid-collection.
fn ft_collect_group_as_leader(
    comm: &mut Communicator,
    ctx: &FtCtx,
    group: usize,
) -> Option<Vec<Volume>> {
    let me = comm.rank();
    let nr = ctx.layout.nr;
    let decomp = ctx.group_decomp(group);
    let tasks = decomp.tasks();
    let mut ledger = ChunkLedger::new(tasks.len(), nr);
    let mut dead: BTreeSet<usize> = BTreeSet::new();

    // Phase 1: own chunks + collection with straggler speculation and
    // failure detection.
    for (b, task) in tasks.iter().enumerate() {
        ledger.offer(b, 0, ctx.compute_chunk(group, task, 0).data().to_vec());
        for j in 1..nr {
            if dead.contains(&j) {
                continue; // requeued in phase 2
            }
            if await_chunk_speculatively(comm, ctx, group, b, task, j, &mut dead, &mut ledger)
                .is_err()
            {
                return None;
            }
        }
    }

    // Phase 2: requeue every still-missing chunk onto a surviving rank
    // of the group — the next live worker after the dead one in cyclic
    // order, falling back to this leader.
    for (b, task) in tasks.iter().enumerate() {
        for j in 1..nr {
            if ledger.has(b, j) {
                continue;
            }
            let from_world = group * nr + j;
            let mut data = None;
            if let Some(t) = next_survivor(j, nr, &dead) {
                let target = group * nr + t;
                ctx.recovery.record(RecoveryEvent::WorkRequeued {
                    group,
                    from_rank: from_world,
                    to_rank: target,
                    chunk: b,
                });
                comm.send(target, CTRL_TAG, encode_ctrl(b, j));
                let mut attempt = 0u32;
                loop {
                    match comm.recv_f32_checked_timeout(
                        target,
                        rechunk_tag(b, j, nr),
                        attempt_deadline(ctx.deadlines.chunk, attempt, target),
                    ) {
                        Ok(d) => {
                            data = Some(d);
                            break;
                        }
                        Err(CommError::IntegrityFailure { detail, .. }) => {
                            attempt += 1;
                            ctx.integrity_failures.inc();
                            ctx.recovery.record(RecoveryEvent::CorruptionDetected {
                                rank: me,
                                what: format!("recomputed chunk {b} from rank {target}: {detail}"),
                                attempt,
                            });
                            if attempt >= MAX_ATTEMPTS {
                                dead.insert(t);
                                ctx.recovery.record(RecoveryEvent::RankDeclaredDead {
                                    group,
                                    rank: target,
                                    detected_by: me,
                                });
                                break;
                            }
                        }
                        Err(CommError::Timeout { .. }) => {
                            attempt += 1;
                            ctx.recovery.record(RecoveryEvent::MessageRetry {
                                rank: me,
                                peer: target,
                                attempt,
                            });
                            if attempt >= MAX_ATTEMPTS {
                                dead.insert(t);
                                ctx.recovery.record(RecoveryEvent::RankDeclaredDead {
                                    group,
                                    rank: target,
                                    detected_by: me,
                                });
                                break;
                            }
                        }
                        Err(_) => return None,
                    }
                }
            }
            let data = data.unwrap_or_else(|| {
                // No surviving worker could take it: the leader is the
                // group's last survivor and recomputes locally.
                ctx.recovery.record(RecoveryEvent::WorkRequeued {
                    group,
                    from_rank: from_world,
                    to_rank: me,
                    chunk: b,
                });
                ctx.compute_chunk(group, task, j).data().to_vec()
            });
            if !ledger.offer(b, j, data) {
                ctx.chunk_duplicates.inc();
            }
        }
    }

    // Phase 3: fixed-order summation + scaling. The order never depends
    // on arrival or recovery history, so results are bitwise stable.
    Some(
        tasks
            .iter()
            .enumerate()
            .map(|(b, task)| {
                ledger.fold_batch(b, ctx.g.nx, ctx.g.ny, task.nz(), task.z_begin, ctx.scale)
            })
            .collect(),
    )
}

/// The speculative executor for rank `j`'s chunk: the next healthy
/// worker after `j` in cyclic group order — never `j` itself (it is the
/// suspected straggler) and never the leader, who is the explicit local
/// fallback when the group has no healthy third rank.
fn speculation_target(j: usize, nr: usize, dead: &BTreeSet<usize>) -> Option<usize> {
    (1..nr)
        .map(|step| 1 + (j - 1 + step) % (nr - 1))
        .find(|&t| t != j && !dead.contains(&t))
}

/// The next surviving worker after `j` in cyclic group order (never the
/// leader — slot 0 — which is the explicit fallback).
fn next_survivor(j: usize, nr: usize, dead: &BTreeSet<usize>) -> Option<usize> {
    (1..nr)
        .map(|step| 1 + (j - 1 + step) % (nr - 1))
        .find(|t| !dead.contains(t))
}

fn ft_leader(comm: &mut Communicator, ctx: &FtCtx) {
    let assign = ctx.layout.assignment(ctx.g, comm.rank());
    match ft_collect_group_as_leader(comm, ctx, assign.group) {
        Some(finished) => {
            for slab in &finished {
                let _ = comm.send_f32_checked(0, SLAB_TAG + slab.z_offset() as u64, slab.data());
            }
            if comm.self_failed() {
                return dead_wait(comm);
            }
            shutdown_wait(comm);
        }
        None => dead_wait(comm),
    }
}

fn ft_root(
    comm: &mut Communicator,
    ctx: &FtCtx,
    ckpt: Option<FtCkpt>,
) -> Result<Volume, ReconstructionError> {
    let result = ft_root_inner(comm, ctx, ckpt);
    // Reliable shutdown to every rank, dead or alive — also on the error
    // paths (checkpoint failure, chaos kill), so the world always joins.
    for r in 1..comm.size() {
        comm.send_control(r, SHUTDOWN_TAG, vec![0]);
    }
    result
}

fn ft_root_inner(
    comm: &mut Communicator,
    ctx: &FtCtx,
    ckpt: Option<FtCkpt>,
) -> Result<Volume, ReconstructionError> {
    let mut store: Option<CheckpointStore> = None;
    let mut committed: Vec<(usize, usize)> = Vec::new();
    let (every, kill_after) = match ckpt {
        Some((endpoint, spec, fp)) => {
            let s = if spec.resume {
                CheckpointStore::open_or_create(endpoint, &spec.dir, fp)?
            } else {
                CheckpointStore::create(endpoint, &spec.dir, fp)?
            };
            committed = s.manifest().committed_ranges();
            store = Some(s);
            (spec.every, spec.kill_after_saves)
        }
        None => (1, None),
    };

    let mut out = Volume::zeros(ctx.g.nx, ctx.g.ny, ctx.g.nz);
    let mut pending: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    for group in 0..ctx.layout.ng {
        let ranges: Vec<(usize, usize)> = ctx
            .group_decomp(group)
            .tasks()
            .iter()
            .map(|t| (t.z_begin, t.z_begin + t.nz()))
            .collect();

        // Resume: a group whose slabs are all committed is loaded, not
        // collected. Its ranks still compute and send — those messages
        // sit in mailboxes until shutdown — so the fault replay under a
        // given plan stays deterministic.
        if let Some(s) = store
            .as_ref()
            .filter(|_| ranges.iter().all(|r| committed.contains(r)))
        {
            for z in ranges {
                let payload = s.load_slab(z, Some(ctx.recovery))?;
                out.paste_slab(&slab_from_bytes(ctx.g.nx, ctx.g.ny, z, &payload)?);
            }
            continue;
        }

        let slabs = if group == 0 {
            // Rank 0 leads group 0 itself.
            ft_collect_group_as_leader(comm, ctx, 0)
                .expect("rank 0 must not be a fault target (it is the recovery coordinator)")
        } else {
            ft_collect_group_slabs(comm, ctx, group)
        };
        for slab in &slabs {
            out.paste_slab(slab);
            if let Some(s) = store.as_mut() {
                let z0 = slab.z_offset();
                pending.push((z0, z0 + slab.nz(), slab_to_bytes(slab)));
                if pending.len() >= every {
                    flush_saves(s, &mut pending, kill_after)?;
                }
            }
        }
    }
    Ok(out)
}

/// Durably commits the pending slabs one by one, checking the chaos kill
/// switch after each commit — so a kill can land between a slab's commit
/// and the next, exactly the crash window the resume path must cover.
fn flush_saves(
    store: &mut CheckpointStore,
    pending: &mut Vec<(usize, usize, Vec<u8>)>,
    kill_after: Option<usize>,
) -> Result<(), ReconstructionError> {
    for (z0, z1, payload) in pending.drain(..) {
        store.save_slab(z0, z1, &payload)?;
        if let Some(k) = kill_after {
            if store.saves_this_run() >= k {
                return Err(ReconstructionError::Interrupted {
                    completed_slabs: store.saves_this_run(),
                });
            }
        }
    }
    Ok(())
}

/// Root-side collection of one remote group's finished slabs, degrading
/// through the group's leader set: original leader → deputies in rank
/// order → the root itself.
fn ft_collect_group_slabs(comm: &mut Communicator, ctx: &FtCtx, group: usize) -> Vec<Volume> {
    let nr = ctx.layout.nr;
    let leader = group * nr;
    let decomp = ctx.group_decomp(group);
    let tasks = decomp.tasks();

    let mut provider = leader;
    let mut tag_base = SLAB_TAG;
    loop {
        match try_collect_slabs(comm, ctx, group, provider, tag_base, tasks) {
            Some(slabs) => return slabs,
            None => {
                let next = provider + 1;
                if next >= leader + nr {
                    // Leader set exhausted: the root recomputes the group.
                    ctx.recovery.record(RecoveryEvent::LeaderSetDegraded {
                        group,
                        dead_leader: provider,
                        new_leader: 0,
                    });
                    return tasks
                        .iter()
                        .enumerate()
                        .map(|(b, task)| {
                            ctx.recovery.record(RecoveryEvent::WorkRequeued {
                                group,
                                from_rank: provider,
                                to_rank: 0,
                                chunk: b,
                            });
                            ctx.recompute_task(group, task)
                        })
                        .collect();
                }
                ctx.recovery.record(RecoveryEvent::LeaderSetDegraded {
                    group,
                    dead_leader: provider,
                    new_leader: next,
                });
                comm.send(next, TAKEOVER_TAG, (group as u32).to_le_bytes().to_vec());
                provider = next;
                tag_base = TAKEOVER_SLAB_TAG;
            }
        }
    }
}

/// Collects all of a group's slabs from one provider; `None` once the
/// provider is declared dead (recorded), discarding any partial slabs —
/// the successor resends the full set, bit-identical.
fn try_collect_slabs(
    comm: &mut Communicator,
    ctx: &FtCtx,
    group: usize,
    provider: usize,
    tag_base: u64,
    tasks: &[SubVolumeTask],
) -> Option<Vec<Volume>> {
    let mut slabs = Vec::with_capacity(tasks.len());
    for task in tasks {
        let mut attempt = 0u32;
        let data = loop {
            match comm.recv_f32_checked_timeout(
                provider,
                tag_base + task.z_begin as u64,
                attempt_deadline(ctx.deadlines.slab, attempt, provider),
            ) {
                Ok(d) => break d,
                Err(CommError::IntegrityFailure { detail, .. }) => {
                    attempt += 1;
                    ctx.integrity_failures.inc();
                    ctx.recovery.record(RecoveryEvent::CorruptionDetected {
                        rank: 0,
                        what: format!("slab z{} from rank {provider}: {detail}", task.z_begin),
                        attempt,
                    });
                    if attempt >= MAX_ATTEMPTS {
                        ctx.recovery.record(RecoveryEvent::RankDeclaredDead {
                            group,
                            rank: provider,
                            detected_by: 0,
                        });
                        return None;
                    }
                }
                Err(CommError::Timeout { .. }) => {
                    attempt += 1;
                    ctx.recovery.record(RecoveryEvent::MessageRetry {
                        rank: 0,
                        peer: provider,
                        attempt,
                    });
                    if attempt >= MAX_ATTEMPTS {
                        ctx.recovery.record(RecoveryEvent::RankDeclaredDead {
                            group,
                            rank: provider,
                            detected_by: 0,
                        });
                        return None;
                    }
                }
                Err(e) => panic!("root receive failed: {e}"),
            }
        };
        let mut slab = Volume::zeros_slab(ctx.g.nx, ctx.g.ny, task.nz(), task.z_begin);
        slab.data_mut().copy_from_slice(&data);
        slabs.push(slab);
    }
    Some(slabs)
}

fn encode_ctrl(b: usize, j: usize) -> Vec<u8> {
    let mut p = (b as u32).to_le_bytes().to_vec();
    p.extend_from_slice(&(j as u32).to_le_bytes());
    p
}

fn decode_ctrl(payload: &[u8]) -> (usize, usize) {
    let b = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    let j = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
    (b, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdk_reconstruct;
    use scalefbp_phantom::{forward_project, uniform_ball};

    #[test]
    fn fault_free_run_matches_reference() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        let g = CbctGeometry::ideal(16, 16, 24, 20);
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let reference = fdk_reconstruct(&g, &p).unwrap();
        let out = fault_tolerant_reconstruct(
            &FdkConfig::new(g).with_nc(2),
            RankLayout::new(2, 2, 2),
            &p,
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(out.recovery.is_empty());
        let err = reference.max_abs_diff(&out.volume);
        assert!(err < 2e-4, "max diff {err}");
    }

    #[test]
    fn fault_free_single_group_is_bitwise() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        // nr = 1: one chunk per batch, no reduction regrouping at all.
        let g = CbctGeometry::ideal(16, 16, 24, 20);
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let reference = fdk_reconstruct(&g, &p).unwrap();
        let out = fault_tolerant_reconstruct(
            &FdkConfig::new(g).with_nc(2),
            RankLayout::new(1, 2, 2),
            &p,
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(out.volume.data(), reference.data());
    }

    #[test]
    fn observed_metrics_merge_across_ranks() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        let g = CbctGeometry::ideal(16, 16, 24, 20);
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let layout = RankLayout::new(2, 2, 2);
        let out = fault_tolerant_reconstruct_observed(
            &FdkConfig::new(g).with_nc(2),
            layout,
            &p,
            &FaultPlan::none(),
            MetricsRegistry::new(),
        )
        .unwrap();
        let m = &out.metrics;
        // Every rank computed at least one chunk.
        assert_eq!(m.ranks(), (0..layout.num_ranks()).collect::<Vec<_>>());
        for r in 0..layout.num_ranks() {
            assert!(m.counter("ft.chunks.computed", Some(r)).unwrap() > 0);
        }
        // Per-rank views merge back to the global snapshot — the property
        // that lets distributed runs ship one snapshot per rank.
        let merged = m
            .ranks()
            .iter()
            .map(|&r| m.rank_view(r))
            .fold(m.unranked_view(), |acc, v| acc.merge(&v));
        assert_eq!(merged.to_json(), m.to_json());
        // Registry-backed traffic equals the post-join NetworkStats.
        assert_eq!(
            merged.aggregate().counter("mpi.send.bytes", None),
            Some(out.network.bytes)
        );
        // Fault-free: the recovery trace is an empty (but valid) export.
        let summary = scalefbp_obs::validate_chrome_trace(&out.chrome_trace()).unwrap();
        assert_eq!(summary.spans, 0);
        assert_eq!(summary.instants, 0);
    }

    /// The wire format (whole chunks vs per-segment pieces) never touches
    /// the fixed-order fold, so every reduce mode yields the same bits.
    #[test]
    fn all_reduce_modes_are_bitwise_identical_fault_free() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        let g = CbctGeometry::ideal(16, 16, 24, 20);
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let layout = RankLayout::new(3, 2, 2);
        let volumes: Vec<Vec<f32>> = ReduceMode::ALL
            .iter()
            .map(|&mode| {
                fault_tolerant_reconstruct(
                    &FdkConfig::new(g.clone()).with_nc(2).with_reduce_mode(mode),
                    layout,
                    &p,
                    &FaultPlan::none(),
                )
                .unwrap()
                .volume
                .data()
                .to_vec()
            })
            .collect();
        assert_eq!(volumes[0], volumes[1], "dense vs hierarchical");
        assert_eq!(volumes[0], volumes[2], "dense vs segmented");
    }

    #[test]
    fn injected_corruption_is_detected_and_recovered_bitwise() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        let g = CbctGeometry::ideal(16, 16, 24, 20);
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let layout = RankLayout::new(2, 2, 2);
        let cfg = FdkConfig::new(g)
            .with_nc(2)
            .with_reduce_mode(ReduceMode::Segmented);
        let golden = fault_tolerant_reconstruct(&cfg, layout, &p, &FaultPlan::none())
            .unwrap()
            .volume;
        // Corrupt the first sealed frame rank 1 sends: its leader detects
        // the CRC mismatch, the retry times out (the frame was consumed),
        // and the chunk is requeued — bitwise-identical recovery.
        let plan = FaultPlan::from_events(vec![scalefbp_faults::FaultEvent {
            rank: 1,
            channel: scalefbp_faults::Channel::Corrupt,
            op_index: 0,
            kind: scalefbp_faults::FaultKind::BitFlip { seed: 7 },
        }]);
        let out =
            fault_tolerant_reconstruct_observed(&cfg, layout, &p, &plan, MetricsRegistry::new())
                .unwrap();
        assert_eq!(out.volume.data(), golden.data());
        assert!(
            out.recovery
                .iter()
                .any(|e| matches!(e, RecoveryEvent::CorruptionDetected { .. })),
            "no corruption recorded: {:?}",
            out.recovery
        );
        let detected: u64 = (0..layout.num_ranks())
            .filter_map(|r| out.metrics.counter("integrity.mpi.failures", Some(r)))
            .sum();
        assert!(detected >= 1, "integrity.mpi.failures not recorded");
    }

    #[test]
    fn checkpointed_distributed_run_resumes_bitwise() {
        let _serial = crate::TIMING_TEST_LOCK.lock();
        let g = CbctGeometry::ideal(16, 16, 24, 20);
        let p = forward_project(&g, &uniform_ball(&g, 0.5, 1.0));
        let layout = RankLayout::new(2, 2, 2);
        let cfg = FdkConfig::new(g)
            .with_nc(2)
            .with_reduce_mode(ReduceMode::Segmented);
        let golden = fault_tolerant_reconstruct(&cfg, layout, &p, &FaultPlan::none())
            .unwrap()
            .volume;

        let d = std::env::temp_dir().join(format!("scalefbp-ft-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let ep = StorageEndpoint::local_nvme(Some(d));
        // Kill after group 0's two slabs commit, mid-distributed-run.
        let spec = CheckpointSpec::new("ck", 1).killing_after(2);
        match fault_tolerant_reconstruct_checkpointed(
            &cfg,
            layout,
            &p,
            &FaultPlan::none(),
            MetricsRegistry::new(),
            &ep,
            &spec,
        ) {
            Err(ReconstructionError::Interrupted { completed_slabs: 2 }) => {}
            other => panic!("kill switch did not fire: {:?}", other.map(|_| ())),
        }

        let resume = CheckpointSpec::new("ck", 1).resuming();
        let out = fault_tolerant_reconstruct_checkpointed(
            &cfg,
            layout,
            &p,
            &FaultPlan::none(),
            MetricsRegistry::new(),
            &ep,
            &resume,
        )
        .unwrap();
        assert_eq!(
            out.volume.data(),
            golden.data(),
            "resumed distributed run must be bitwise identical"
        );
        let snap = ep.metrics_registry().snapshot();
        assert_eq!(snap.counter("ckpt.resumed.slabs", None), Some(2));
    }

    #[test]
    fn next_survivor_cycles_and_skips_dead() {
        let dead: BTreeSet<usize> = [2].into_iter().collect();
        assert_eq!(next_survivor(2, 4, &dead), Some(3));
        assert_eq!(next_survivor(3, 4, &dead), Some(1));
        let all: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
        assert_eq!(next_survivor(1, 4, &all), None);
        assert_eq!(next_survivor(1, 1, &BTreeSet::new()), None);
    }

    #[test]
    fn speculation_target_skips_suspect_and_dead() {
        let none = BTreeSet::new();
        // nr = 4: the next worker after the suspect, cyclically.
        assert_eq!(speculation_target(1, 4, &none), Some(2));
        assert_eq!(speculation_target(3, 4, &none), Some(1));
        // Dead ranks are skipped.
        let dead: BTreeSet<usize> = [2].into_iter().collect();
        assert_eq!(speculation_target(1, 4, &dead), Some(3));
        // nr = 2: the only other worker IS the suspect — leader-local.
        assert_eq!(speculation_target(1, 2, &none), None);
        // Everyone else dead — leader-local.
        let all: BTreeSet<usize> = [2, 3].into_iter().collect();
        assert_eq!(speculation_target(1, 4, &all), None);
    }

    /// Regression for the silent failure mode the hard-coded timeouts
    /// had: a large volume's honest chunk takes longer than the fixed
    /// 500 ms deadline, so every healthy rank would have been declared
    /// dead. Derived deadlines must scale with the modelled work and
    /// with `timeout_scale`, while tiny problems keep the legacy floors.
    #[test]
    fn derived_deadlines_scale_with_problem_size_and_timeout_scale() {
        let layout = RankLayout::new(2, 2, 2);

        // Tiny problem: modelled batch time is microseconds, so the
        // legacy floors win — detection latency unchanged.
        let tiny = FdkConfig::new(CbctGeometry::ideal(16, 16, 24, 20)).with_nc(2);
        let d_tiny = derive_deadlines(&tiny, layout);
        assert_eq!(d_tiny.chunk, CHUNK_TIMEOUT);
        assert_eq!(d_tiny.slab, SLAB_TIMEOUT);

        // Paper-scale problem: the modelled batch cost dwarfs 500 ms,
        // and the old constants would misdetect every honest rank.
        let large = FdkConfig::new(CbctGeometry::ideal(2048, 2048, 2048, 4096));
        let d_large = derive_deadlines(&large, layout);
        assert!(
            d_large.chunk > CHUNK_TIMEOUT,
            "large-volume chunk deadline stuck at the floor: {:?}",
            d_large.chunk
        );
        assert!(
            d_large.slab > SLAB_TIMEOUT,
            "large-volume slab deadline stuck at the floor: {:?}",
            d_large.slab
        );
        // The slab wait covers a whole group's chunks, so it dominates.
        assert!(d_large.slab >= d_large.chunk * 2);

        // Monotone in timeout_scale: a more patient config waits longer.
        let patient = derive_deadlines(&large.clone().with_timeout_scale(8.0), layout);
        assert!(patient.chunk > d_large.chunk);
        assert!(patient.slab > d_large.slab);

        // Pure: same inputs, same deadlines.
        assert_eq!(derive_deadlines(&large, layout), d_large);
    }

    /// Deadlines depend on the reduce mode's modelled communication
    /// pattern — each mode derives from its own batch estimate, and all
    /// stay at or above the floors.
    #[test]
    fn derived_deadlines_cover_all_reduce_modes() {
        let layout = RankLayout::new(3, 2, 2);
        for mode in ReduceMode::ALL {
            let cfg = FdkConfig::new(CbctGeometry::ideal(16, 16, 24, 20))
                .with_nc(2)
                .with_reduce_mode(mode);
            let d = derive_deadlines(&cfg, layout);
            assert!(d.chunk >= CHUNK_TIMEOUT, "{mode:?}: {:?}", d.chunk);
            assert!(d.slab >= SLAB_TIMEOUT, "{mode:?}: {:?}", d.slab);
            assert!(d.slab >= d.chunk * 2, "{mode:?}");
        }
    }

    #[test]
    fn chunk_ledger_first_copy_wins_and_folds_in_rank_order() {
        let mut ledger = ChunkLedger::new(1, 2);
        assert!(!ledger.has(0, 1));
        assert!(ledger.offer(0, 1, vec![1.0; 4]));
        assert!(ledger.has(0, 1));
        // The duplicate (bitwise twin in real runs) is discarded.
        assert!(!ledger.offer(0, 1, vec![2.0; 4]));
        assert_eq!(ledger.duplicates(), 1);
        assert!(ledger.offer(0, 0, vec![0.5; 4]));
        let slab = ledger.fold_batch(0, 2, 2, 1, 0, 2.0);
        assert_eq!(slab.data(), &[3.0; 4]);
    }
}
