//! The distributed framework (Section 4.4) on the in-process MPI
//! substrate: rank groups, per-group sub-volume batches, and the
//! hierarchical segmented reduction.

use std::sync::Arc;

use scalefbp_backproject::KernelStats;
use scalefbp_faults::NoFaults;
use scalefbp_filter::FilterPipeline;
use scalefbp_geom::{ProjectionMatrix, ProjectionStack, RankLayout, Volume, VolumeDecomposition};
use scalefbp_mpisim::{
    hierarchical_reduce_sum, segment_partition, NetworkStats, ReduceMode, World,
};
use scalefbp_obs::MetricsRegistry;

use crate::{FdkConfig, ReconstructionError};

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// The assembled volume (gathered at world rank 0).
    pub volume: Volume,
    /// Network traffic observed (all ranks).
    pub network: NetworkStats,
    /// Kernel work per rank (rank order).
    pub per_rank_kernel: Vec<KernelStats>,
}

/// Tag base for leader→root slab shipping.
const SLAB_TAG: u64 = 7_000;

/// Runs the paper's distributed reconstruction end to end on
/// `layout.num_ranks()` simulated ranks (threads):
///
/// 1. Every rank takes its `N_p/N_r` projection share and the detector-row
///    ranges of its group's sub-volume batches (the 2-D input split of
///    Figure 3a).
/// 2. Per batch, it filters and back-projects a *partial* sub-volume.
/// 3. The group reduces each partial slab according to
///    `config.reduce_mode`: the hierarchical tree `MPI_Reduce` to its
///    leader (Section 4.4.2, the default — bit-compatible with earlier
///    releases), a flat canonical dense reduce to the leader, or the
///    paper's segmented reduce-scatter leaving each rank only its own
///    `Nz` segment (see `docs/communication.md`).
/// 4. Slab owners (group leaders, or every segment owner in segmented
///    mode) normalise and ship finished slabs to world rank 0 (the
///    stand-in for the parallel file system), which assembles the volume.
///
/// `ranks_per_node` mirrors the ABCI topology (4 GPUs/node).
pub fn distributed_reconstruct(
    config: &FdkConfig,
    layout: RankLayout,
    projections: &ProjectionStack,
    ranks_per_node: usize,
) -> Result<DistributedOutcome, ReconstructionError> {
    config.validate()?;
    let g = &config.geometry;
    if projections.nv() != g.nv || projections.np() != g.np || projections.nu() != g.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            g.nv,
            g.np,
            g.nu
        )));
    }
    assert!(
        g.nz >= layout.ng,
        "more groups ({}) than volume slices ({})",
        layout.ng,
        g.nz
    );

    let window = config.window;
    let reduce_mode = config.reduce_mode;
    let kernel_choice = config.kernel;
    let filter_choice = config.filter;
    // One executor shared by every rank closure: the compute dispatch is
    // identical per rank, and the kernels are pure functions of their
    // inputs, so sharing changes nothing observable.
    let exec = config.build_executor(Arc::new(NoFaults), 0, MetricsRegistry::new())?;
    let (results, network) = World::run_with_stats(layout.num_ranks(), |mut comm| {
        let assign = layout.assignment(g, comm.rank());
        let filter = FilterPipeline::new(g, window);
        let scale = filter.backprojection_scale() as f32;
        let mats = ProjectionMatrix::full_scan(g);
        let my_mats = &mats[assign.s_begin..assign.s_end];

        // The group communicator: the segmented collective's scope.
        let mut group_comm = comm
            .split(assign.group as u64, assign.rank_in_group as i64)
            .expect("comm split failed");

        let decomp = VolumeDecomposition::new(g, assign.z_begin, assign.z_end, assign.nb);
        let mut kernel = KernelStats::default();
        let mut finished: Vec<Volume> = Vec::new();

        for task in decomp.tasks() {
            // 2-D input split: this rank's projections, this batch's rows.
            let mut part = projections.extract_window(
                task.rows.begin,
                task.rows.end,
                assign.s_begin,
                assign.s_end,
            );
            exec.filter_stack(&filter, filter_choice, &mut part)
                .expect("filter stage failed");

            let mut slab = Volume::zeros_slab(g.nx, g.ny, task.nz(), task.z_begin);
            let stats = exec
                .backproject(kernel_choice, &part, my_mats, &mut slab)
                .expect("back-projection failed");
            kernel.merge(&stats);

            match reduce_mode {
                // The node-aware tree reduction to the group leader — the
                // default, byte-identical to earlier releases.
                ReduceMode::Hierarchical => {
                    hierarchical_reduce_sum(&mut group_comm, 0, slab.data_mut(), ranks_per_node)
                        .expect("group reduction failed");
                }
                // Flat canonical reduce: the leader folds whole partial
                // slabs in rank order.
                ReduceMode::Dense => {
                    group_comm
                        .reduce_sum_f32_canonical(0, slab.data_mut())
                        .expect("group reduction failed");
                }
                // The paper's segmented reduce-scatter: each rank keeps
                // only its own z-segment of the batch slab, chunked one
                // z-slice per message. The chain's running left fold makes
                // the result bit-identical to the dense canonical reduce.
                ReduceMode::Segmented => {
                    let stride = g.nx * g.ny;
                    let parts = segment_partition(task.nz(), layout.nr);
                    let counts: Vec<usize> = parts.iter().map(|r| r.len() * stride).collect();
                    let seg = group_comm
                        .segmented_reduce_scatter_f32(slab.data(), &counts, stride)
                        .expect("group reduce-scatter failed");
                    let mine = &parts[assign.rank_in_group];
                    if !mine.is_empty() {
                        let mut owned =
                            Volume::zeros_slab(g.nx, g.ny, mine.len(), task.z_begin + mine.start);
                        owned.data_mut().copy_from_slice(&seg);
                        for v in owned.data_mut() {
                            *v *= scale;
                        }
                        finished.push(owned);
                    }
                    continue;
                }
            }
            if assign.is_group_leader {
                for v in slab.data_mut() {
                    *v *= scale;
                }
                finished.push(slab);
            }
        }

        // Slab owners ship finished slabs to world rank 0: the group
        // leaders, or — in segmented mode — every segment owner.
        let ships = match reduce_mode {
            ReduceMode::Segmented => comm.rank() != 0,
            _ => assign.is_group_leader && comm.rank() != 0,
        };
        if ships {
            for slab in &finished {
                comm.send_f32(0, SLAB_TAG + slab.z_offset() as u64, slab.data());
            }
        }
        let volume = if comm.rank() == 0 {
            let mut out = Volume::zeros(g.nx, g.ny, g.nz);
            for slab in &finished {
                out.paste_slab(slab);
            }
            match reduce_mode {
                ReduceMode::Hierarchical | ReduceMode::Dense => {
                    for group in 1..layout.ng {
                        let leader = group * layout.nr;
                        let (z0, z1) = layout.group_slices(g, group);
                        let sub =
                            VolumeDecomposition::new(g, z0, z1, layout.assignment(g, leader).nb);
                        for task in sub.tasks() {
                            let data = comm.recv_f32(leader, SLAB_TAG + task.z_begin as u64);
                            let mut slab = Volume::zeros_slab(g.nx, g.ny, task.nz(), task.z_begin);
                            slab.data_mut().copy_from_slice(&data);
                            out.paste_slab(&slab);
                        }
                    }
                }
                ReduceMode::Segmented => {
                    // Every (group, task, owner) segment; z offsets are
                    // globally unique, so the tag identifies the slab.
                    for group in 0..layout.ng {
                        let (z0, z1) = layout.group_slices(g, group);
                        let nb = layout.assignment(g, group * layout.nr).nb;
                        let sub = VolumeDecomposition::new(g, z0, z1, nb);
                        for task in sub.tasks() {
                            for (j, part) in
                                segment_partition(task.nz(), layout.nr).iter().enumerate()
                            {
                                let owner = group * layout.nr + j;
                                if owner == 0 || part.is_empty() {
                                    continue;
                                }
                                let z = task.z_begin + part.start;
                                let data = comm.recv_f32(owner, SLAB_TAG + z as u64);
                                let mut slab = Volume::zeros_slab(g.nx, g.ny, part.len(), z);
                                slab.data_mut().copy_from_slice(&data);
                                out.paste_slab(&slab);
                            }
                        }
                    }
                }
            }
            Some(out)
        } else {
            None
        };
        (volume, kernel)
    });

    let per_rank_kernel = results.iter().map(|r| r.1).collect();
    let volume = results
        .into_iter()
        .next()
        .and_then(|r| r.0)
        .expect("rank 0 must produce the assembled volume");

    Ok(DistributedOutcome {
        volume,
        network,
        per_rank_kernel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdk_reconstruct;
    use scalefbp_geom::CbctGeometry;
    use scalefbp_phantom::{forward_project, uniform_ball};

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(24, 32, 48, 40)
    }

    fn projections(g: &CbctGeometry) -> ProjectionStack {
        forward_project(g, &uniform_ball(g, 0.5, 1.0))
    }

    fn run(layout: RankLayout, rpn: usize) -> (Volume, DistributedOutcome) {
        let g = geom();
        let p = projections(&g);
        let reference = fdk_reconstruct(&g, &p).unwrap();
        let out = distributed_reconstruct(&FdkConfig::new(g).with_nc(2), layout, &p, rpn).unwrap();
        (reference, out)
    }

    #[test]
    fn single_rank_matches_reference_bitwise() {
        let (reference, out) = run(RankLayout::new(1, 1, 2), 1);
        assert_eq!(out.volume.data(), reference.data());
    }

    #[test]
    fn groups_only_split_matches_bitwise() {
        // ng > 1, nr = 1: no reduction, different slabs on different ranks;
        // float order unchanged → bit-identical.
        let (reference, out) = run(RankLayout::new(1, 4, 2), 1);
        assert_eq!(out.volume.data(), reference.data());
    }

    #[test]
    fn projection_split_matches_within_fp_tolerance() {
        // nr > 1 regroups the f32 summation (partial volumes reduced by
        // tree) — equal within accumulation tolerance.
        let (reference, out) = run(RankLayout::new(4, 1, 2), 2);
        let err = reference.max_abs_diff(&out.volume);
        assert!(err < 2e-4, "max diff {err}");
        // Scaled comparison: RMSE far below any voxel feature.
        assert!(reference.rmse(&out.volume) < 2e-5);
    }

    #[test]
    fn full_grid_of_groups_and_ranks() {
        for (nr, ng, rpn) in [(2, 2, 2), (2, 3, 1), (4, 2, 4), (3, 2, 2)] {
            let (reference, out) = run(RankLayout::new(nr, ng, 2), rpn);
            let err = reference.max_abs_diff(&out.volume);
            assert!(err < 2e-4, "nr={nr} ng={ng}: max diff {err}");
        }
    }

    fn run_mode(layout: RankLayout, rpn: usize, mode: ReduceMode) -> DistributedOutcome {
        let g = geom();
        let p = projections(&g);
        let cfg = FdkConfig::new(g).with_nc(2).with_reduce_mode(mode);
        distributed_reconstruct(&cfg, layout, &p, rpn).unwrap()
    }

    /// The canonical-ordering contract at driver level: dense and
    /// segmented modes fold identically, so whole volumes are bitwise
    /// equal — including non-power-of-two group widths.
    #[test]
    fn dense_and_segmented_modes_are_bitwise_identical() {
        for (nr, ng) in [(2, 2), (3, 2), (4, 1), (1, 3)] {
            let dense = run_mode(RankLayout::new(nr, ng, 2), 2, ReduceMode::Dense);
            let seg = run_mode(RankLayout::new(nr, ng, 2), 2, ReduceMode::Segmented);
            assert_eq!(
                dense.volume.data(),
                seg.volume.data(),
                "nr={nr} ng={ng}: dense vs segmented"
            );
        }
    }

    /// No `reduce_mode` override means the pre-existing hierarchical tree
    /// path, byte for byte.
    #[test]
    fn default_mode_is_hierarchical_bitwise() {
        let layout = RankLayout::new(3, 2, 2);
        let default = run_mode(layout, 2, ReduceMode::default());
        let hier = run_mode(layout, 2, ReduceMode::Hierarchical);
        assert_eq!(default.volume.data(), hier.volume.data());
    }

    /// Every mode reconstructs the phantom within float-accumulation
    /// tolerance of the serial reference.
    #[test]
    fn all_reduce_modes_match_reference() {
        let g = geom();
        let p = projections(&g);
        let reference = fdk_reconstruct(&g, &p).unwrap();
        for mode in ReduceMode::ALL {
            let out = run_mode(RankLayout::new(4, 2, 2), 2, mode);
            let err = reference.max_abs_diff(&out.volume);
            assert!(err < 2e-4, "{mode}: max diff {err}");
        }
    }

    /// Segmented mode records its `mpisim.segreduce.*` traffic.
    #[test]
    fn segmented_mode_counts_segreduce_traffic() {
        let out = run_mode(RankLayout::new(4, 1, 2), 2, ReduceMode::Segmented);
        // Chain through-traffic is at least one group slab per batch hop.
        assert!(out.network.bytes > 0);
    }

    /// Backend selection never changes a distributed volume: every
    /// reduce mode is bitwise identical between sim and cpu.
    #[test]
    fn cpu_backend_is_bitwise_identical_across_reduce_modes() {
        let g = geom();
        let p = projections(&g);
        for mode in ReduceMode::ALL {
            let layout = RankLayout::new(2, 2, 2);
            let sim_cfg = FdkConfig::new(g.clone()).with_nc(2).with_reduce_mode(mode);
            let cpu_cfg = sim_cfg.clone().with_backend(crate::BackendChoice::Cpu);
            let sim = distributed_reconstruct(&sim_cfg, layout, &p, 2).unwrap();
            let cpu = distributed_reconstruct(&cpu_cfg, layout, &p, 2).unwrap();
            assert_eq!(sim.volume.data(), cpu.volume.data(), "{mode}");
        }
    }

    #[test]
    fn kernel_work_is_split_across_ranks() {
        let (_, out) = run(RankLayout::new(2, 2, 2), 2);
        let total: u64 = out.per_rank_kernel.iter().map(|k| k.updates).sum();
        let g = geom();
        assert_eq!(total, g.voxel_updates() as u64);
        // Each rank did roughly a quarter.
        for k in &out.per_rank_kernel {
            let share = k.updates as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.1, "share {share}");
        }
    }

    #[test]
    fn network_carries_reduction_traffic() {
        let (_, out) = run(RankLayout::new(4, 1, 2), 2);
        let g = geom();
        // At least one full volume of reduce traffic (plus leader→root
        // shipping, which rank 0 skips because it is the leader here).
        assert!(out.network.bytes as usize >= g.volume_bytes());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = geom();
        let bad = ProjectionStack::zeros(g.nv, g.np, g.nu + 2);
        let cfg = FdkConfig::new(g);
        assert!(matches!(
            distributed_reconstruct(&cfg, RankLayout::new(1, 1, 2), &bad, 1),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }
}
