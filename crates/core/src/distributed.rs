//! The distributed framework (Section 4.4) on the in-process MPI
//! substrate: rank groups, per-group sub-volume batches, and the
//! hierarchical segmented reduction.

use scalefbp_backproject::{backproject_parallel, KernelStats};
use scalefbp_filter::FilterPipeline;
use scalefbp_geom::{ProjectionMatrix, ProjectionStack, RankLayout, Volume, VolumeDecomposition};
use scalefbp_mpisim::{hierarchical_reduce_sum, NetworkStats, World};

use crate::{FdkConfig, ReconstructionError};

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// The assembled volume (gathered at world rank 0).
    pub volume: Volume,
    /// Network traffic observed (all ranks).
    pub network: NetworkStats,
    /// Kernel work per rank (rank order).
    pub per_rank_kernel: Vec<KernelStats>,
}

/// Tag base for leader→root slab shipping.
const SLAB_TAG: u64 = 7_000;

/// Runs the paper's distributed reconstruction end to end on
/// `layout.num_ranks()` simulated ranks (threads):
///
/// 1. Every rank takes its `N_p/N_r` projection share and the detector-row
///    ranges of its group's sub-volume batches (the 2-D input split of
///    Figure 3a).
/// 2. Per batch, it filters and back-projects a *partial* sub-volume.
/// 3. The group performs the hierarchical segmented `MPI_Reduce`
///    (Section 4.4.2) to its leader — the only collective in the pipeline.
/// 4. Leaders normalise and ship finished slabs to world rank 0 (the
///    stand-in for the parallel file system), which assembles the volume.
///
/// `ranks_per_node` mirrors the ABCI topology (4 GPUs/node).
pub fn distributed_reconstruct(
    config: &FdkConfig,
    layout: RankLayout,
    projections: &ProjectionStack,
    ranks_per_node: usize,
) -> Result<DistributedOutcome, ReconstructionError> {
    config.validate()?;
    let g = &config.geometry;
    if projections.nv() != g.nv || projections.np() != g.np || projections.nu() != g.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            g.nv,
            g.np,
            g.nu
        )));
    }
    assert!(
        g.nz >= layout.ng,
        "more groups ({}) than volume slices ({})",
        layout.ng,
        g.nz
    );

    let window = config.window;
    let (results, network) = World::run_with_stats(layout.num_ranks(), |mut comm| {
        let assign = layout.assignment(g, comm.rank());
        let filter = FilterPipeline::new(g, window);
        let scale = filter.backprojection_scale() as f32;
        let mats = ProjectionMatrix::full_scan(g);
        let my_mats = &mats[assign.s_begin..assign.s_end];

        // The group communicator: the segmented collective's scope.
        let mut group_comm = comm
            .split(assign.group as u64, assign.rank_in_group as i64)
            .expect("comm split failed");

        let decomp = VolumeDecomposition::new(g, assign.z_begin, assign.z_end, assign.nb);
        let mut kernel = KernelStats::default();
        let mut finished: Vec<Volume> = Vec::new();

        for task in decomp.tasks() {
            // 2-D input split: this rank's projections, this batch's rows.
            let mut part = projections.extract_window(
                task.rows.begin,
                task.rows.end,
                assign.s_begin,
                assign.s_end,
            );
            filter.filter_stack(&mut part);

            let mut slab = Volume::zeros_slab(g.nx, g.ny, task.nz(), task.z_begin);
            let stats = backproject_parallel(&part, my_mats, &mut slab);
            kernel.merge(&stats);

            // Segmented reduction to the group leader.
            hierarchical_reduce_sum(&mut group_comm, 0, slab.data_mut(), ranks_per_node)
                .expect("group reduction failed");
            if assign.is_group_leader {
                for v in slab.data_mut() {
                    *v *= scale;
                }
                finished.push(slab);
            }
        }

        // Leaders ship finished slabs to world rank 0.
        if assign.is_group_leader && comm.rank() != 0 {
            for slab in &finished {
                comm.send_f32(0, SLAB_TAG + slab.z_offset() as u64, slab.data());
            }
        }
        let volume = if comm.rank() == 0 {
            let mut out = Volume::zeros(g.nx, g.ny, g.nz);
            for slab in &finished {
                out.paste_slab(slab);
            }
            for group in 1..layout.ng {
                let leader = group * layout.nr;
                let (z0, z1) = layout.group_slices(g, group);
                let sub = VolumeDecomposition::new(g, z0, z1, layout.assignment(g, leader).nb);
                for task in sub.tasks() {
                    let data = comm.recv_f32(leader, SLAB_TAG + task.z_begin as u64);
                    let mut slab = Volume::zeros_slab(g.nx, g.ny, task.nz(), task.z_begin);
                    slab.data_mut().copy_from_slice(&data);
                    out.paste_slab(&slab);
                }
            }
            Some(out)
        } else {
            None
        };
        (volume, kernel)
    });

    let per_rank_kernel = results.iter().map(|r| r.1).collect();
    let volume = results
        .into_iter()
        .next()
        .and_then(|r| r.0)
        .expect("rank 0 must produce the assembled volume");

    Ok(DistributedOutcome {
        volume,
        network,
        per_rank_kernel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdk_reconstruct;
    use scalefbp_geom::CbctGeometry;
    use scalefbp_phantom::{forward_project, uniform_ball};

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(24, 32, 48, 40)
    }

    fn projections(g: &CbctGeometry) -> ProjectionStack {
        forward_project(g, &uniform_ball(g, 0.5, 1.0))
    }

    fn run(layout: RankLayout, rpn: usize) -> (Volume, DistributedOutcome) {
        let g = geom();
        let p = projections(&g);
        let reference = fdk_reconstruct(&g, &p).unwrap();
        let out = distributed_reconstruct(&FdkConfig::new(g).with_nc(2), layout, &p, rpn).unwrap();
        (reference, out)
    }

    #[test]
    fn single_rank_matches_reference_bitwise() {
        let (reference, out) = run(RankLayout::new(1, 1, 2), 1);
        assert_eq!(out.volume.data(), reference.data());
    }

    #[test]
    fn groups_only_split_matches_bitwise() {
        // ng > 1, nr = 1: no reduction, different slabs on different ranks;
        // float order unchanged → bit-identical.
        let (reference, out) = run(RankLayout::new(1, 4, 2), 1);
        assert_eq!(out.volume.data(), reference.data());
    }

    #[test]
    fn projection_split_matches_within_fp_tolerance() {
        // nr > 1 regroups the f32 summation (partial volumes reduced by
        // tree) — equal within accumulation tolerance.
        let (reference, out) = run(RankLayout::new(4, 1, 2), 2);
        let err = reference.max_abs_diff(&out.volume);
        assert!(err < 2e-4, "max diff {err}");
        // Scaled comparison: RMSE far below any voxel feature.
        assert!(reference.rmse(&out.volume) < 2e-5);
    }

    #[test]
    fn full_grid_of_groups_and_ranks() {
        for (nr, ng, rpn) in [(2, 2, 2), (2, 3, 1), (4, 2, 4), (3, 2, 2)] {
            let (reference, out) = run(RankLayout::new(nr, ng, 2), rpn);
            let err = reference.max_abs_diff(&out.volume);
            assert!(err < 2e-4, "nr={nr} ng={ng}: max diff {err}");
        }
    }

    #[test]
    fn kernel_work_is_split_across_ranks() {
        let (_, out) = run(RankLayout::new(2, 2, 2), 2);
        let total: u64 = out.per_rank_kernel.iter().map(|k| k.updates).sum();
        let g = geom();
        assert_eq!(total, g.voxel_updates() as u64);
        // Each rank did roughly a quarter.
        for k in &out.per_rank_kernel {
            let share = k.updates as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.1, "share {share}");
        }
    }

    #[test]
    fn network_carries_reduction_traffic() {
        let (_, out) = run(RankLayout::new(4, 1, 2), 2);
        let g = geom();
        // At least one full volume of reduce traffic (plus leader→root
        // shipping, which rank 0 skips because it is the leader here).
        assert!(out.network.bytes as usize >= g.volume_bytes());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = geom();
        let bad = ProjectionStack::zeros(g.nv, g.np, g.nu + 2);
        let cfg = FdkConfig::new(g);
        assert!(matches!(
            distributed_reconstruct(&cfg, RankLayout::new(1, 1, 2), &bad, 1),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }
}
