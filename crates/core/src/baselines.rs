//! The prior-art decomposition schemes of Table 2, for ablation.
//!
//! Three schemes sharing one geometry are compared on the axes Table 2
//! tabulates: minimum device working set (the "Lower-bound Input Size"
//! column), total host→device traffic, communication volume and collective
//! structure, and out-of-core capability:
//!
//! * [`Scheme::TwoD`] — this paper: input split on `N_v` × `N_p`, output
//!   split on Z, segmented `O(log N_r)` reduce, differential row loading.
//! * [`Scheme::NpOnly`] — iFDK-style: input split only on `N_p`; every GPU
//!   holds the **full** volume, merged by a world-wide collective; no
//!   out-of-core capability (the ✗ column of Table 5 for big volumes).
//! * [`Scheme::NoSplit`] — RTK/Lu-style single-GPU: no input split; Lu et
//!   al.'s out-of-core variant re-streams the *entire* projection set for
//!   every sub-volume chunk (the redundancy the paper eliminates).

use scalefbp_backproject::backproject_parallel;
use scalefbp_filter::FilterPipeline;
use scalefbp_geom::{CbctGeometry, ProjectionMatrix, ProjectionStack, Volume, VolumeDecomposition};
use scalefbp_gpusim::DeviceSpec;
use scalefbp_mpisim::{NetworkStats, World};

use crate::{FdkConfig, ReconstructionError};

/// A decomposition scheme under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// This paper's 2-D input / 1-D output decomposition.
    TwoD {
        /// Ranks per group (projection-axis split).
        nr: usize,
        /// Number of groups (volume-axis split).
        ng: usize,
    },
    /// iFDK-style `N_p`-only input decomposition.
    NpOnly {
        /// Total ranks splitting the projection axis.
        nranks: usize,
    },
    /// RTK/Lu-style single-GPU processing.
    NoSplit,
}

/// The Table 2 cost axes, in bytes/counts for one full reconstruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeCosts {
    /// Minimum device working set (projection footprint + volume slab) —
    /// the feasibility bound of Table 5.
    pub min_device_bytes: u64,
    /// Total host→device projection traffic per GPU.
    pub h2d_bytes_per_gpu: u64,
    /// Total inter-rank communication volume (sum over all messages).
    pub comm_bytes: u64,
    /// Rounds of the (largest) collective on the critical path.
    pub collective_rounds: u32,
    /// Whether the scheme can emit volumes larger than device memory.
    pub out_of_core: bool,
}

impl SchemeCosts {
    /// Whether the scheme can run this reconstruction on `device`.
    pub fn feasible_on(&self, device: &DeviceSpec) -> bool {
        self.min_device_bytes <= device.memory_bytes
    }
}

fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        n.next_power_of_two().trailing_zeros()
    }
}

/// Evaluates the cost axes of `scheme` for `geom`, processing the volume in
/// `nc` batches per group/GPU (the paper's `N_c`).
pub fn scheme_costs(geom: &CbctGeometry, scheme: Scheme, nc: usize) -> SchemeCosts {
    let f32b = 4u64;
    let proj_bytes = geom.projection_bytes() as u64;
    let vol_bytes = geom.volume_bytes() as u64;
    match scheme {
        Scheme::TwoD { nr, ng } => {
            let ns = geom.nz.div_ceil(ng);
            let nb = ns.div_ceil(nc).max(1);
            let decomp = VolumeDecomposition::new(geom, 0, ns.min(geom.nz), nb);
            // Device window: the widest slab's rows, this rank's N_p share.
            let window_rows = decomp.max_rows().min(geom.nv);
            let np_local = geom.np.div_ceil(nr) as u64;
            let window = window_rows as u64 * np_local * geom.nu as u64 * f32b;
            let slab = (geom.nx * geom.ny * nb) as u64 * f32b;
            // Differential loading: each needed row crosses PCIe once.
            let rows_streamed = decomp.total_rows_differential() as u64;
            let h2d = rows_streamed * np_local * geom.nu as u64 * f32b;
            // Segmented reduce: per batch, (nr−1) slab-sized messages over
            // the binomial tree, in every group.
            let comm =
                (nr.saturating_sub(1)) as u64 * slab * decomp.num_subvolumes() as u64 * ng as u64;
            SchemeCosts {
                min_device_bytes: window + slab,
                h2d_bytes_per_gpu: h2d,
                comm_bytes: comm,
                collective_rounds: log2_ceil(nr),
                out_of_core: true,
            }
        }
        Scheme::NpOnly { nranks } => {
            let np_local = geom.np.div_ceil(nranks) as u64;
            let proj_local = np_local * (geom.nv * geom.nu) as u64 * f32b;
            // Every rank needs the whole output volume resident plus its
            // projection share (streamed in nc projection batches).
            let proj_batch = proj_local.div_ceil(nc as u64);
            SchemeCosts {
                min_device_bytes: vol_bytes + proj_batch,
                h2d_bytes_per_gpu: proj_local,
                // World-wide reduction of the FULL volume.
                comm_bytes: (nranks.saturating_sub(1)) as u64 * vol_bytes,
                collective_rounds: log2_ceil(nranks),
                out_of_core: false,
            }
        }
        Scheme::NoSplit => {
            // Lu-style: sub-volume chunks, but every chunk re-streams the
            // entire projection set (no N_v split ⇒ no differential reuse
            // across chunks beyond device capacity).
            let slab = vol_bytes.div_ceil(nc as u64);
            let proj_batch = proj_bytes.div_ceil(nc as u64);
            SchemeCosts {
                min_device_bytes: slab + proj_batch,
                h2d_bytes_per_gpu: proj_bytes * nc as u64,
                comm_bytes: 0,
                collective_rounds: 0,
                out_of_core: true,
            }
        }
    }
}

/// A *runnable* iFDK-style baseline: `N_p`-only decomposition — every rank
/// holds the full volume, back-projects its projection share against all
/// detector rows, and a single **world-wide** reduction merges the copies
/// at rank 0.
///
/// Numerically equivalent to [`crate::distributed_reconstruct`] (it is the
/// same maths, decomposed worse); its communication and memory footprints
/// are what Table 2 charges it for. Used by the ablation benches.
pub fn distributed_np_only(
    config: &FdkConfig,
    nranks: usize,
    projections: &ProjectionStack,
) -> Result<(Volume, NetworkStats), ReconstructionError> {
    config.validate()?;
    let g = &config.geometry;
    if projections.nv() != g.nv || projections.np() != g.np || projections.nu() != g.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            g.nv,
            g.np,
            g.nu
        )));
    }
    assert!(nranks > 0, "need at least one rank");

    let window = config.window;
    let (results, network) = World::run_with_stats(nranks, |mut comm| {
        let r = comm.rank();
        let s0 = r * g.np / nranks;
        let s1 = (r + 1) * g.np / nranks;
        let filter = FilterPipeline::new(g, window);
        let mats = ProjectionMatrix::full_scan(g);

        let mut part = projections.extract_window(0, g.nv, s0, s1);
        filter.filter_stack(&mut part);

        // The full volume, resident on every rank — the scheme's defining
        // (and limiting) property.
        let mut vol = Volume::zeros(g.nx, g.ny, g.nz);
        backproject_parallel(&part, &mats[s0..s1], &mut vol);

        // One world-wide collective.
        comm.reduce_sum_f32(0, vol.data_mut());
        if comm.rank() == 0 {
            let scale = filter.backprojection_scale() as f32;
            for v in vol.data_mut() {
                *v *= scale;
            }
            Some(vol)
        } else {
            None
        }
    });

    let volume = results
        .into_iter()
        .next()
        .flatten()
        .expect("rank 0 must hold the reduced volume");
    Ok((volume, network))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_geom::DatasetPreset;

    fn paper_scale() -> CbctGeometry {
        DatasetPreset::by_name("coffee_bean").unwrap().geometry
    }

    fn small() -> CbctGeometry {
        CbctGeometry::ideal(64, 96, 96, 96)
    }

    #[test]
    fn ours_needs_far_less_device_memory_than_np_only() {
        let g = paper_scale(); // 4096³ output = 256 GB
        let ours = scheme_costs(&g, Scheme::TwoD { nr: 16, ng: 64 }, 8);
        let ifdk = scheme_costs(&g, Scheme::NpOnly { nranks: 1024 }, 8);
        assert!(ours.min_device_bytes * 4 < ifdk.min_device_bytes);
        // Table 5's ✗: iFDK-style cannot fit a 4096³ volume on a V100.
        let v100 = DeviceSpec::v100_16gb();
        assert!(!ifdk.feasible_on(&v100));
        assert!(
            ours.feasible_on(&v100),
            "ours needs {} B",
            ours.min_device_bytes
        );
    }

    #[test]
    fn segmented_reduce_moves_less_than_global_reduce() {
        let g = paper_scale();
        let ours = scheme_costs(&g, Scheme::TwoD { nr: 16, ng: 64 }, 8);
        let ifdk = scheme_costs(&g, Scheme::NpOnly { nranks: 1024 }, 8);
        // Ours: each group reduces only its own slabs. Total ≈ (nr−1)·vol.
        // iFDK: (nranks−1)·vol.
        assert!(
            ours.comm_bytes * 10 < ifdk.comm_bytes,
            "ours {} vs iFDK {}",
            ours.comm_bytes,
            ifdk.comm_bytes
        );
        // Collective rounds: log2(16)=4 vs log2(1024)=10 — the O(log N)
        // vs O(N·log N)-ish column of Table 2.
        assert_eq!(ours.collective_rounds, 4);
        assert_eq!(ifdk.collective_rounds, 10);
    }

    #[test]
    fn differential_loading_beats_lu_style_restreaming() {
        let g = small();
        let ours = scheme_costs(&g, Scheme::TwoD { nr: 1, ng: 1 }, 8);
        let lu = scheme_costs(&g, Scheme::NoSplit, 8);
        // Lu re-streams the whole projection set nc times; ours streams
        // each row once.
        assert!(
            ours.h2d_bytes_per_gpu * 4 < lu.h2d_bytes_per_gpu,
            "ours {} vs Lu {}",
            ours.h2d_bytes_per_gpu,
            lu.h2d_bytes_per_gpu
        );
    }

    #[test]
    fn ours_h2d_is_about_one_projection_pass() {
        let g = small();
        let ours = scheme_costs(&g, Scheme::TwoD { nr: 1, ng: 1 }, 8);
        let one_pass = g.projection_bytes() as u64;
        assert!(ours.h2d_bytes_per_gpu <= one_pass + one_pass / 4);
        assert!(ours.h2d_bytes_per_gpu >= one_pass / 2);
    }

    #[test]
    fn no_split_has_no_communication() {
        let g = small();
        let lu = scheme_costs(&g, Scheme::NoSplit, 8);
        assert_eq!(lu.comm_bytes, 0);
        assert_eq!(lu.collective_rounds, 0);
        assert!(lu.out_of_core);
    }

    #[test]
    fn runnable_np_only_baseline_matches_fdk() {
        let g = CbctGeometry::ideal(20, 24, 40, 36);
        let projections =
            scalefbp_phantom::forward_project(&g, &scalefbp_phantom::uniform_ball(&g, 0.5, 1.0));
        let reference = crate::fdk_reconstruct(&g, &projections).unwrap();
        let cfg = FdkConfig::new(g.clone());
        let (vol, network) = distributed_np_only(&cfg, 4, &projections).unwrap();
        let err = reference.max_abs_diff(&vol);
        assert!(err < 3e-4, "max diff {err}");
        // Its defining waste: the world-wide reduce moves full volumes.
        assert!(network.bytes as usize >= g.volume_bytes());
    }

    #[test]
    fn np_only_moves_more_than_ours_at_equal_ranks() {
        let g = CbctGeometry::ideal(20, 24, 40, 36);
        let projections =
            scalefbp_phantom::forward_project(&g, &scalefbp_phantom::uniform_ball(&g, 0.5, 1.0));
        let cfg = FdkConfig::new(g.clone()).with_nc(2);
        let (_, ifdk_net) = distributed_np_only(&cfg, 4, &projections).unwrap();
        let ours = crate::distributed_reconstruct(
            &cfg,
            scalefbp_geom::RankLayout::new(2, 2, 2),
            &projections,
            2,
        )
        .unwrap();
        assert!(
            ours.network.bytes < ifdk_net.bytes,
            "ours {} vs iFDK {}",
            ours.network.bytes,
            ifdk_net.bytes
        );
    }

    #[test]
    fn np_only_is_not_out_of_core() {
        let g = small();
        assert!(!scheme_costs(&g, Scheme::NpOnly { nranks: 8 }, 8).out_of_core);
        assert!(scheme_costs(&g, Scheme::TwoD { nr: 2, ng: 4 }, 8).out_of_core);
    }

    #[test]
    fn more_groups_shrink_our_working_set() {
        let g = paper_scale();
        let few = scheme_costs(&g, Scheme::TwoD { nr: 16, ng: 4 }, 8);
        let many = scheme_costs(&g, Scheme::TwoD { nr: 16, ng: 64 }, 8);
        assert!(many.min_device_bytes < few.min_device_bytes);
    }
}
