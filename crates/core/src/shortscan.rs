//! Short-scan (partial-arc) FDK with Parker weighting — an extension
//! beyond the paper's full-scan evaluation.
//!
//! Clinical C-arm CBCT systems (one of the paper's motivating device
//! classes) often cannot rotate a full 360°: they acquire the minimal
//! short-scan arc `π + 2Δ` (fan angle `2Δ`). Each object ray is then
//! measured once or twice depending on its fan position, and the classic
//! Parker weights smoothly apportion the redundant measurements so FDK
//! remains exact in the mid-plane.
//!
//! The module reuses every substrate unchanged: arbitrary-angle projection
//! matrices, the same filter pipeline, the same kernels. Only the angle
//! table, the per-pixel weighting and the normalisation differ.

use scalefbp_backproject::backproject_parallel;
use scalefbp_filter::{FilterPipeline, FilterWindow};
use scalefbp_geom::{CbctGeometry, ProjectionMatrix, ProjectionStack, Volume};

use crate::ReconstructionError;

/// The fan half-angle `Δ` (radians) of the geometry: the angular reach of
/// the detector's widest column as seen from the source.
pub fn fan_half_angle(geom: &CbctGeometry) -> f64 {
    let cu = 0.5 * (geom.nu as f64 - 1.0) + geom.sigma_u;
    let reach = cu.abs().max((geom.nu as f64 - 1.0 - cu).abs()) * geom.du;
    (reach / geom.dsd).atan()
}

/// The minimal short-scan arc `π + 2Δ` (radians).
pub fn short_scan_arc(geom: &CbctGeometry) -> f64 {
    std::f64::consts::PI + 2.0 * fan_half_angle(geom)
}

/// Scan angle of projection `s` for an `arc`-radian scan of `np` views
/// (endpoint exclusive, like the full-scan convention).
#[inline]
pub fn arc_angle(s: usize, np: usize, arc: f64) -> f64 {
    arc * s as f64 / np as f64
}

/// The Parker weight for scan angle `beta` and ray fan angle `gamma`, for
/// a short scan of arc `π + 2Δ` (Parker, Med. Phys. 1982).
///
/// Weights are in `[0, 1]`; complementary rays (`β, γ` and
/// `β + π − 2γ, −γ`) always weigh to 1 combined, which is what keeps the
/// reconstruction unbiased.
pub fn parker_weight(beta: f64, gamma: f64, delta: f64) -> f64 {
    let q = std::f64::consts::FRAC_PI_4; // π/4
    let pi = std::f64::consts::PI;
    if beta < 0.0 || beta > pi + 2.0 * delta {
        return 0.0;
    }
    if beta <= 2.0 * (delta + gamma) {
        // Ramp-up region: this ray's complement lies near the arc's end.
        let denom = delta + gamma;
        if denom <= 1e-12 {
            return 0.0;
        }
        let s = (q * beta / denom).sin();
        s * s
    } else if beta <= pi + 2.0 * gamma {
        1.0
    } else {
        // Ramp-down region: complement near the arc's start.
        let denom = delta - gamma;
        if denom <= 1e-12 {
            return 0.0;
        }
        let s = (q * (pi + 2.0 * delta - beta) / denom).sin();
        s * s
    }
}

/// Builds the per-(projection, column) Parker weight table for `np` views
/// over the geometry's short-scan arc.
pub fn parker_weights(geom: &CbctGeometry) -> Vec<Vec<f32>> {
    let delta = fan_half_angle(geom);
    let arc = short_scan_arc(geom);
    let cu = 0.5 * (geom.nu as f64 - 1.0) + geom.sigma_u;
    (0..geom.np)
        .map(|s| {
            let beta = arc_angle(s, geom.np, arc);
            (0..geom.nu)
                .map(|u| {
                    let gamma = ((u as f64 - cu) * geom.du / geom.dsd).atan();
                    parker_weight(beta, gamma, delta) as f32
                })
                .collect()
        })
        .collect()
}

/// Short-scan FDK: reconstructs from `N_p` projections spanning the
/// minimal arc `π + 2Δ` instead of 360°.
///
/// `projections` uses the same detector-row-major layout; projection `s`
/// is assumed acquired at `β = arc·s/N_p`.
pub fn fdk_reconstruct_short_scan(
    geom: &CbctGeometry,
    projections: &ProjectionStack,
    window: FilterWindow,
) -> Result<Volume, ReconstructionError> {
    geom.validate()?;
    if projections.nv() != geom.nv || projections.np() != geom.np || projections.nu() != geom.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            geom.nv,
            geom.np,
            geom.nu
        )));
    }

    let arc = short_scan_arc(geom);
    let pipeline = FilterPipeline::new(geom, window);
    let weights = parker_weights(geom);

    // Parker-weight, then ramp-filter, every row.
    let mut filtered = projections.clone();
    for v in 0..geom.nv {
        for (s, w) in weights.iter().enumerate() {
            let row = filtered.row_mut(v, s);
            for (px, &wu) in row.iter_mut().zip(w) {
                *px *= wu;
            }
        }
    }
    pipeline.filter_stack(&mut filtered);

    let mats: Vec<ProjectionMatrix> = (0..geom.np)
        .map(|s| ProjectionMatrix::new(geom, arc_angle(s, geom.np, arc)))
        .collect();
    let mut vol = Volume::zeros(geom.nx, geom.ny, geom.nz);
    backproject_parallel(&filtered, &mats, &mut vol);

    // Normalisation: Δβ·D_so², and ×2 to undo the full-scan redundancy ½
    // folded into the filter (Parker weighting already accounts for the
    // short scan's partial double coverage).
    let dbeta = arc / geom.np as f64;
    let scale = (2.0 * dbeta * geom.dso * geom.dso) as f32;
    for v in vol.data_mut() {
        *v *= scale;
    }
    Ok(vol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_phantom::{forward_project_arc, rasterize, uniform_ball};

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(40, 140, 80, 64)
    }

    #[test]
    fn fan_angle_and_arc_are_consistent() {
        let g = geom();
        let delta = fan_half_angle(&g);
        assert!(delta > 0.0 && delta < std::f64::consts::FRAC_PI_2);
        assert!((short_scan_arc(&g) - (std::f64::consts::PI + 2.0 * delta)).abs() < 1e-12);
        // ideal(…, 80 wide, Δu=1, Dsd=250): Δ = atan(39.5/250).
        assert!((delta - (39.5f64 / 250.0).atan()).abs() < 1e-12);
    }

    #[test]
    fn parker_weights_are_bounded_and_taper() {
        let g = geom();
        let w = parker_weights(&g);
        assert_eq!(w.len(), g.np);
        for row in &w {
            for &x in row {
                assert!((0.0..=1.0 + 1e-6).contains(&(x as f64)));
            }
        }
        // First and last views are strongly down-weighted at (at least one
        // side of) the fan; mid-scan views weigh 1.
        let mid = &w[g.np / 2];
        assert!(mid.iter().all(|&x| (x - 1.0).abs() < 1e-5));
        assert!(w[0].iter().any(|&x| x < 0.5));
        assert!(w[g.np - 1].iter().any(|&x| x < 0.5));
    }

    #[test]
    fn complementary_rays_weigh_to_one() {
        let delta = 0.2;
        for gamma in [-0.15, -0.05, 0.0, 0.1] {
            for beta in [0.05, 0.3, 1.0, 2.0] {
                let comp_beta = beta + std::f64::consts::PI - 2.0 * gamma;
                if comp_beta <= std::f64::consts::PI + 2.0 * delta {
                    let sum =
                        parker_weight(beta, gamma, delta) + parker_weight(comp_beta, -gamma, delta);
                    assert!((sum - 1.0).abs() < 1e-9, "β={beta} γ={gamma}: sum {sum}");
                }
            }
        }
    }

    #[test]
    fn short_scan_matches_full_scan_reconstruction() {
        let g = geom();
        let ball = uniform_ball(&g, 0.55, 1.0);
        let arc = short_scan_arc(&g);
        let short_projs = forward_project_arc(&g, &ball, arc);
        let short = fdk_reconstruct_short_scan(&g, &short_projs, FilterWindow::RamLak).unwrap();

        // Mid-plane centre matches the phantom density.
        let c = short.get(g.nx / 2, g.ny / 2, g.nz / 2);
        assert!((c - 1.0).abs() < 0.1, "short-scan centre {c}");

        // And the whole mid-plane agrees with the rasterised truth to a
        // few percent RMS.
        let truth = rasterize(&g, &ball);
        let k = g.nz / 2;
        let mut sum = 0.0f64;
        let mut n = 0;
        for j in g.ny / 4..3 * g.ny / 4 {
            for i in g.nx / 4..3 * g.nx / 4 {
                let d = (short.get(i, j, k) - truth.get(i, j, k)) as f64;
                sum += d * d;
                n += 1;
            }
        }
        let rmse = (sum / n as f64).sqrt();
        assert!(rmse < 0.12, "mid-plane RMSE {rmse}");
    }

    #[test]
    fn unweighted_short_scan_is_biased() {
        // Dropping the Parker weights must visibly break the
        // reconstruction — guarding that the weights do real work.
        let g = geom();
        let ball = uniform_ball(&g, 0.55, 1.0);
        let arc = short_scan_arc(&g);
        let projs = forward_project_arc(&g, &ball, arc);

        let weighted = fdk_reconstruct_short_scan(&g, &projs, FilterWindow::RamLak).unwrap();

        // Naive: treat the arc like a (scaled) full scan without weights.
        let pipeline = FilterPipeline::new(&g, FilterWindow::RamLak);
        let mut filtered = projs.clone();
        pipeline.filter_stack(&mut filtered);
        let mats: Vec<ProjectionMatrix> = (0..g.np)
            .map(|s| ProjectionMatrix::new(&g, arc_angle(s, g.np, arc)))
            .collect();
        let mut naive = Volume::zeros(g.nx, g.ny, g.nz);
        backproject_parallel(&filtered, &mats, &mut naive);
        let scale = (2.0 * arc / g.np as f64 * g.dso * g.dso) as f32;
        for v in naive.data_mut() {
            *v *= scale;
        }

        let truth = rasterize(&g, &ball);
        let err_weighted = weighted.rmse(&truth);
        let err_naive = naive.rmse(&truth);
        assert!(
            err_weighted < err_naive * 0.8,
            "weighted {err_weighted} vs naive {err_naive}"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = geom();
        let bad = ProjectionStack::zeros(g.nv, g.np - 1, g.nu);
        assert!(matches!(
            fdk_reconstruct_short_scan(&g, &bad, FilterWindow::RamLak),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }
}
