//! One-call in-core FDK reconstruction.

use std::sync::Arc;

use scalefbp_backproject::backproject_parallel;
use scalefbp_faults::NoFaults;
use scalefbp_filter::{FilterPipeline, FilterWindow};
use scalefbp_geom::{compute_ab, CbctGeometry, ProjectionMatrix, ProjectionStack, Volume};
use scalefbp_obs::MetricsRegistry;

use crate::{FdkConfig, ReconstructionError};

/// Reconstructs the full volume in memory with the Ram-Lak window:
/// filtering (Eq 2) → back-projection (Algorithm 1) → FDK normalisation.
///
/// `projections` must be a full log-domain stack (`N_v × N_p × N_u`, the
/// output of Equation 1 pre-processing). This is the "simple path" against
/// which the out-of-core and distributed drivers are validated.
pub fn fdk_reconstruct(
    geom: &CbctGeometry,
    projections: &ProjectionStack,
) -> Result<Volume, ReconstructionError> {
    fdk_reconstruct_with(geom, projections, FilterWindow::RamLak)
}

/// [`fdk_reconstruct`] with an explicit apodisation window.
pub fn fdk_reconstruct_with(
    geom: &CbctGeometry,
    projections: &ProjectionStack,
    window: FilterWindow,
) -> Result<Volume, ReconstructionError> {
    geom.validate()?;
    if projections.nv() != geom.nv || projections.np() != geom.np || projections.nu() != geom.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            geom.nv,
            geom.np,
            geom.nu
        )));
    }

    let pipeline = FilterPipeline::new(geom, window);
    let mut filtered = projections.clone();
    pipeline.filter_stack(&mut filtered);

    let mats = ProjectionMatrix::full_scan(geom);
    let mut vol = Volume::zeros(geom.nx, geom.ny, geom.nz);
    backproject_parallel(&filtered, &mats, &mut vol);

    let scale = pipeline.backprojection_scale() as f32;
    for v in vol.data_mut() {
        *v *= scale;
    }
    Ok(vol)
}

/// [`fdk_reconstruct`] honouring the full [`FdkConfig`]: apodisation
/// window, back-projection [`KernelChoice`](crate::KernelChoice),
/// [`FilterChoice`](crate::FilterChoice) and compute
/// [`BackendChoice`](crate::BackendChoice). With the default config this
/// is bit-identical to [`fdk_reconstruct`]; the `Blocked`/`Fused` fast
/// paths and the `cpu` backend are validated against it in the workspace
/// property tests.
pub fn fdk_reconstruct_configured(
    config: &FdkConfig,
    projections: &ProjectionStack,
) -> Result<Volume, ReconstructionError> {
    let geom = &config.geometry;
    config.validate()?;
    if projections.nv() != geom.nv || projections.np() != geom.np || projections.nu() != geom.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            geom.nv,
            geom.np,
            geom.nu
        )));
    }

    let exec = config.build_executor(Arc::new(NoFaults), 0, MetricsRegistry::new())?;

    let pipeline = FilterPipeline::new(geom, config.window);
    let mut filtered = projections.clone();
    exec.filter_stack(&pipeline, config.filter, &mut filtered)?;

    let mats = ProjectionMatrix::full_scan(geom);
    let mut vol = Volume::zeros(geom.nx, geom.ny, geom.nz);
    exec.backproject(config.kernel, &filtered, &mats, &mut vol)?;

    let scale = pipeline.backprojection_scale() as f32;
    for v in vol.data_mut() {
        *v *= scale;
    }
    Ok(vol)
}

/// Region-of-interest reconstruction: only global slices `[z_begin,
/// z_end)` of the volume, from only the detector rows those slices need
/// (`ComputeAB`). The returned slab's `z_offset` is `z_begin`; its voxels
/// are bit-identical to the corresponding slices of the full
/// reconstruction.
///
/// This is the user-facing face of the paper's decomposition: a clinician
/// re-reconstructing ten slices around a feature pays for ten slices, not
/// for the volume.
pub fn fdk_reconstruct_slab(
    geom: &CbctGeometry,
    projections: &ProjectionStack,
    z_begin: usize,
    z_end: usize,
    window: FilterWindow,
) -> Result<Volume, ReconstructionError> {
    geom.validate()?;
    if projections.nv() != geom.nv || projections.np() != geom.np || projections.nu() != geom.nu {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "projections {}×{}×{} vs geometry {}×{}×{}",
            projections.nv(),
            projections.np(),
            projections.nu(),
            geom.nv,
            geom.np,
            geom.nu
        )));
    }
    if z_begin >= z_end || z_end > geom.nz {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "slice range [{z_begin}, {z_end}) invalid for nz={}",
            geom.nz
        )));
    }

    let rows = compute_ab(geom, z_begin, z_end);
    let mut part = projections.extract_window(rows.begin, rows.end, 0, geom.np);
    let pipeline = FilterPipeline::new(geom, window);
    pipeline.filter_stack(&mut part);

    let mats = ProjectionMatrix::full_scan(geom);
    let mut slab = Volume::zeros_slab(geom.nx, geom.ny, z_end - z_begin, z_begin);
    backproject_parallel(&part, &mats, &mut slab);

    let scale = pipeline.backprojection_scale() as f32;
    for v in slab.data_mut() {
        *v *= scale;
    }
    Ok(slab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_phantom::{forward_project, rasterize, uniform_ball, Phantom};

    /// A geometry with a moderate cone angle and enough sampling for
    /// quantitative checks.
    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(48, 96, 96, 80)
    }

    #[test]
    fn uniform_ball_reconstructs_to_its_density() {
        let g = geom();
        let ball = uniform_ball(&g, 0.6, 1.0);
        let p = forward_project(&g, &ball);
        let vol = fdk_reconstruct(&g, &p).unwrap();
        // Mid-plane centre: FDK is exact there up to discretisation.
        let c = vol.get(g.nx / 2, g.ny / 2, g.nz / 2);
        assert!(
            (c - 1.0).abs() < 0.08,
            "centre density {c}, expected 1.0 — FDK normalisation is off"
        );
        // Well outside the ball (mid-plane corner region): near zero.
        let o = vol.get(2, g.ny / 2, g.nz / 2);
        assert!(o.abs() < 0.12, "outside density {o}");
    }

    #[test]
    fn ball_edge_is_sharp_in_midplane() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 2.0);
        let r_vox = ball.ellipsoids()[0].semi_axes[0] / g.dx;
        let p = forward_project(&g, &ball);
        let vol = fdk_reconstruct(&g, &p).unwrap();
        let k = g.nz / 2;
        let j = g.ny / 2;
        let cx = (g.nx as f64 - 1.0) / 2.0;
        // Profile along +x: inside ≈ 2.0, outside ≈ 0.
        let inside = vol.get((cx + r_vox * 0.5) as usize, j, k);
        let outside = vol.get((cx + r_vox * 1.5).min(g.nx as f64 - 1.0) as usize, j, k);
        assert!((inside - 2.0).abs() < 0.25, "inside {inside}");
        assert!(outside.abs() < 0.25, "outside {outside}");
    }

    #[test]
    fn reconstruction_is_linear_in_the_object() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let mut p1 = forward_project(&g, &ball);
        let v1 = fdk_reconstruct(&g, &p1).unwrap();
        // Double the projections: reconstruction doubles.
        for px in p1.data_mut() {
            *px *= 2.0;
        }
        let v2 = fdk_reconstruct(&g, &p1).unwrap();
        let c1 = v1.get(g.nx / 2, g.ny / 2, g.nz / 2);
        let c2 = v2.get(g.nx / 2, g.ny / 2, g.nz / 2);
        assert!((c2 - 2.0 * c1).abs() < 1e-3);
    }

    #[test]
    fn rmse_against_rasterised_phantom_is_small() {
        // The paper's numerical assessment: reconstruct a phantom and
        // compare to the ground truth. With a band-limited ramp the interior
        // matches to a few percent RMS (edges ring, cone artifacts at
        // extreme z — both excluded by comparing the central region).
        let g = geom();
        let ball = uniform_ball(&g, 0.55, 1.0);
        let p = forward_project(&g, &ball);
        let vol = fdk_reconstruct(&g, &p).unwrap();
        let truth = rasterize(&g, &ball);
        let mut sum = 0.0f64;
        let mut n = 0usize;
        let margin = g.nz / 4;
        for k in margin..(g.nz - margin) {
            for j in (g.ny / 4)..(3 * g.ny / 4) {
                for i in (g.nx / 4)..(3 * g.nx / 4) {
                    let d = (vol.get(i, j, k) - truth.get(i, j, k)) as f64;
                    sum += d * d;
                    n += 1;
                }
            }
        }
        let rmse = (sum / n as f64).sqrt();
        assert!(rmse < 0.1, "central-region RMSE {rmse}");
    }

    #[test]
    fn off_centre_ball_lands_at_the_right_place() {
        let g = geom();
        let r = g.footprint_radius();
        let ball = Phantom::new(vec![scalefbp_phantom::Ellipsoid::sphere(
            [0.3 * r, -0.2 * r, 0.1 * r],
            0.2 * r,
            1.5,
        )]);
        let p = forward_project(&g, &ball);
        let vol = fdk_reconstruct(&g, &p).unwrap();
        // Find the voxel indices of the ball centre.
        let ci = ((0.3 * r) / g.dx + (g.nx as f64 - 1.0) / 2.0).round() as usize;
        let cj = ((-0.2 * r) / g.dy + (g.ny as f64 - 1.0) / 2.0).round() as usize;
        let ck = ((0.1 * r) / g.dz + (g.nz as f64 - 1.0) / 2.0).round() as usize;
        let at_centre = vol.get(ci, cj, ck);
        assert!(
            (at_centre - 1.5).abs() < 0.25,
            "density at displaced centre {at_centre}"
        );
        // The volume centre (outside the ball) stays near zero.
        let at_origin = vol.get(g.nx / 2, g.ny / 2, g.nz / 2);
        assert!(at_origin.abs() < 0.25, "origin density {at_origin}");
    }

    #[test]
    fn geometric_offsets_are_corrected() {
        // Same phantom scanned with detector offsets: the corrected
        // reconstruction must match the uncorrected-geometry one closely
        // (this is the Table 4 capability RTK lacks for these datasets).
        let g0 = geom();
        let ball = uniform_ball(&g0, 0.5, 1.0);
        let v0 = fdk_reconstruct(&g0, &forward_project(&g0, &ball)).unwrap();

        let mut g1 = g0.clone();
        g1.sigma_u = 3.0;
        g1.sigma_v = -2.0;
        g1.sigma_cor = 0.004 * g0.footprint_radius();
        let v1 = fdk_reconstruct(&g1, &forward_project(&g1, &ball)).unwrap();

        let c0 = v0.get(g0.nx / 2, g0.ny / 2, g0.nz / 2);
        let c1 = v1.get(g0.nx / 2, g0.ny / 2, g0.nz / 2);
        assert!((c0 - c1).abs() < 0.05, "corrected {c1} vs baseline {c0}");
    }

    #[test]
    fn slab_roi_is_bit_identical_to_full_reconstruction() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let full = fdk_reconstruct(&g, &p).unwrap();
        for (z0, z1) in [(0, 6), (20, 28), (g.nz - 5, g.nz)] {
            let slab = fdk_reconstruct_slab(&g, &p, z0, z1, FilterWindow::RamLak).unwrap();
            assert_eq!(slab.z_offset(), z0);
            for k in 0..(z1 - z0) {
                assert_eq!(slab.slice(k), full.slice(z0 + k), "slice {}", z0 + k);
            }
        }
    }

    #[test]
    fn slab_roi_rejects_bad_range() {
        let g = geom();
        let p = ProjectionStack::zeros(g.nv, g.np, g.nu);
        assert!(matches!(
            fdk_reconstruct_slab(&g, &p, 5, 5, FilterWindow::RamLak),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
        assert!(matches!(
            fdk_reconstruct_slab(&g, &p, 0, g.nz + 1, FilterWindow::RamLak),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let g = geom();
        let p = ProjectionStack::zeros(g.nv, g.np, g.nu - 1);
        assert!(matches!(
            fdk_reconstruct(&g, &p),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn configured_default_is_bit_identical_to_plain_path() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let plain = fdk_reconstruct(&g, &p).unwrap();
        let configured = fdk_reconstruct_configured(&FdkConfig::new(g), &p).unwrap();
        assert_eq!(plain.data(), configured.data());
    }

    #[test]
    fn blocked_kernel_reconstruction_is_bit_identical() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let baseline = fdk_reconstruct(&g, &p).unwrap();
        let blocked = fdk_reconstruct_configured(
            &FdkConfig::new(g).with_kernel(crate::KernelChoice::Blocked),
            &p,
        )
        .unwrap();
        assert_eq!(baseline.data(), blocked.data());
    }

    #[test]
    fn cpu_backend_is_bit_identical_and_stub_refuses_to_compute() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let sim = fdk_reconstruct_configured(&FdkConfig::new(g.clone()), &p).unwrap();
        let cpu = fdk_reconstruct_configured(
            &FdkConfig::new(g.clone()).with_backend(crate::BackendChoice::Cpu),
            &p,
        )
        .unwrap();
        assert_eq!(sim.data(), cpu.data());
        assert!(matches!(
            fdk_reconstruct_configured(
                &FdkConfig::new(g).with_backend(crate::BackendChoice::WgpuStub),
                &p,
            ),
            Err(ReconstructionError::Backend(_))
        ));
    }

    #[test]
    fn fused_filter_reconstruction_stays_close_to_two_pass() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let two_pass = fdk_reconstruct(&g, &p).unwrap();
        let fused = fdk_reconstruct_configured(
            &FdkConfig::new(g.clone()).with_filter(crate::FilterChoice::Fused),
            &p,
        )
        .unwrap();
        let mut max = 0.0f32;
        for (a, b) in two_pass.data().iter().zip(fused.data()) {
            max = max.max((a - b).abs());
        }
        // The fused filter differs by a few f64 ULP before the f32 store;
        // through the back-projection sum that stays far below any
        // clinically meaningful level.
        assert!(max < 1e-4, "max fused-vs-two-pass deviation {max}");
    }

    #[test]
    fn windows_reduce_noise_but_keep_means() {
        let g = geom();
        let ball = uniform_ball(&g, 0.5, 1.0);
        let p = forward_project(&g, &ball);
        let ram = fdk_reconstruct_with(&g, &p, FilterWindow::RamLak).unwrap();
        let hann = fdk_reconstruct_with(&g, &p, FilterWindow::Hann).unwrap();
        let c_ram = ram.get(g.nx / 2, g.ny / 2, g.nz / 2);
        let c_hann = hann.get(g.nx / 2, g.ny / 2, g.nz / 2);
        // Hann smooths but preserves the interior level roughly.
        assert!((c_hann - c_ram).abs() < 0.15, "{c_hann} vs {c_ram}");
    }
}
