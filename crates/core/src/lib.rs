//! # scalefbp — Scalable FBP Decomposition for Cone-Beam CT Reconstruction
//!
//! A from-scratch Rust reproduction of Chen et al., *"Scalable FBP
//! Decomposition for Cone-Beam CT Reconstruction"*, SC '21
//! (DOI 10.1145/3458817.3476139).
//!
//! The paper's contribution is a decomposition of the FDK
//! filtered-back-projection algorithm for cone-beam CT that splits the
//! **input projections in two dimensions** (detector rows `N_v` and
//! projection count `N_p`) and the **output volume along Z**, which
//!
//! 1. replaces the global collectives of prior distributed CBCT frameworks
//!    with one *segmented* `MPI_Reduce` per group of `N_r` ranks,
//! 2. removes the redundant host↔device traffic of batch-only schemes via
//!    differential row updates (Figure 4 / Eq 6–7), and
//! 3. enables **out-of-core** reconstruction of volumes far exceeding
//!    device memory through a modular detector-row ring buffer
//!    (Listing 1 / Algorithm 3).
//!
//! ## Entry points
//!
//! * [`fdk_reconstruct`] — the one-call in-core FDK reconstruction
//!   (filter + back-project + normalise): the quickstart API.
//! * [`OutOfCoreReconstructor`] — Algorithm 3 on a simulated device with a
//!   hard memory capacity: streams detector-row windows through a
//!   [`scalefbp_backproject::TextureWindow`] and emits sub-volume slabs.
//! * [`PipelinedReconstructor`] — the five-stage threaded pipeline of
//!   Figure 9 (load → filter → back-project → store on one rank), with
//!   span tracing for the Figure 10 timelines.
//! * [`distributed_reconstruct`] — the full distributed framework on the
//!   in-process MPI substrate: rank groups (Eq 9–12), per-group sub-volume
//!   batches, hierarchical segmented reduction (Section 4.4.2).
//! * [`timing`] — the discrete-event **timing mode** that replays the same
//!   task graph at paper scale (1024 GPUs, 4096³ volumes) with calibrated
//!   stage durations; the source of the Figure 13–15 "measured
//!   (simulated)" curves.
//! * [`baselines`] — the prior-art decomposition schemes of Table 2
//!   (RTK/Lu-style no-split, iFDK-style `N_p`-only) for the ablation
//!   benches.
//!
//! Substrate crates (`scalefbp-fft`, `-geom`, `-phantom`, `-filter`,
//! `-backproject`, `-gpusim`, `-mpisim`, `-iosim`, `-pipeline`,
//! `-perfmodel`) are re-exported under [`substrates`] for convenience.
//!
//! ## Example
//!
//! Simulate a scan of a uniform ball and reconstruct it:
//!
//! ```
//! use scalefbp::{fdk_reconstruct, CbctGeometry};
//! use scalefbp::substrates::phantom::{forward_project, uniform_ball};
//!
//! // A small scanner: 16³ volume, 24×24 panel, 20 projections.
//! let geom = CbctGeometry::ideal(16, 20, 24, 24);
//! let ball = uniform_ball(&geom, 0.5, 1.0);
//! let projections = forward_project(&geom, &ball);
//! let volume = fdk_reconstruct(&geom, &projections).unwrap();
//!
//! // The ball's density is recovered at the centre.
//! let c = volume.get(8, 8, 8);
//! assert!((c - 1.0).abs() < 0.25, "centre {c}");
//! ```

/// Serialises tests whose assertions depend on wall-clock behaviour
/// (stage overlap, failure-detection timeouts) against each other, so
/// thread-pool contention from a concurrently running world cannot turn
/// a timing margin into a spurious failure.
#[cfg(test)]
pub(crate) static TIMING_TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

pub mod baselines;
pub mod checkpoint;
mod config;
mod distributed;
mod fault_tolerant;
mod fdk;
mod iterative;
mod outofcore;
mod pipelined;
pub mod shortscan;
pub mod timing;

pub use checkpoint::config_fingerprint;
pub use config::{
    BackendChoice, FdkConfig, FilterChoice, KernelChoice, ReconstructionError, ReduceMode,
};
pub use distributed::{distributed_reconstruct, DistributedOutcome};
pub use fault_tolerant::{
    derive_deadlines, fault_tolerant_reconstruct, fault_tolerant_reconstruct_checkpointed,
    fault_tolerant_reconstruct_observed, ChunkLedger, FaultTolerantOutcome, FtDeadlines,
};
pub use fdk::{
    fdk_reconstruct, fdk_reconstruct_configured, fdk_reconstruct_slab, fdk_reconstruct_with,
};
pub use iterative::{
    iterative_fingerprint, iterative_reconstruct_distributed, IterativeConfig, IterativeOutcome,
    IterativeSolver,
};
pub use outofcore::{OutOfCoreReconstructor, OutOfCoreReport};
pub use pipelined::{PipelineReport, PipelinedReconstructor};
pub use scalefbp_ckpt::{CheckpointSpec, CheckpointStore};
pub use shortscan::fdk_reconstruct_short_scan;

/// Re-exports of every substrate crate.
pub mod substrates {
    pub use scalefbp_backproject as backproject;
    pub use scalefbp_exec as exec;
    pub use scalefbp_fft as fft;
    pub use scalefbp_filter as filter;
    pub use scalefbp_geom as geom;
    pub use scalefbp_gpusim as gpusim;
    pub use scalefbp_iosim as iosim;
    pub use scalefbp_iterative as iterative;
    pub use scalefbp_mpisim as mpisim;
    pub use scalefbp_obs as obs;
    pub use scalefbp_perfmodel as perfmodel;
    pub use scalefbp_phantom as phantom;
    pub use scalefbp_pipeline as pipeline;
}

// The observability layer's entry types, at the crate root: a registry
// to thread through `*_observed` runs and the snapshot they export.
pub use scalefbp_obs::{MetricsRegistry, MetricsSnapshot};

// The most-used substrate types, at the crate root for ergonomics.
pub use scalefbp_filter::FilterWindow;
pub use scalefbp_geom::{CbctGeometry, DatasetPreset, ProjectionStack, RankLayout, Volume};
pub use scalefbp_gpusim::DeviceSpec;
