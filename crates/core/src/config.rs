//! Top-level configuration and errors.

use scalefbp_filter::FilterWindow;
use scalefbp_geom::{CbctGeometry, GeometryError};
use scalefbp_gpusim::{DeviceError, DeviceSpec};

/// Errors from the reconstruction drivers.
#[derive(Debug)]
pub enum ReconstructionError {
    /// Invalid acquisition geometry.
    Geometry(GeometryError),
    /// The device cannot hold even a single-slice working set.
    DeviceTooSmall {
        /// Bytes needed for the minimal working set.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// A device operation failed.
    Device(DeviceError),
    /// Projection data does not match the geometry.
    ShapeMismatch(String),
}

impl std::fmt::Display for ReconstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructionError::Geometry(e) => write!(f, "geometry error: {e}"),
            ReconstructionError::DeviceTooSmall { needed, capacity } => write!(
                f,
                "device too small: minimal working set {needed} B exceeds capacity {capacity} B"
            ),
            ReconstructionError::Device(e) => write!(f, "device error: {e}"),
            ReconstructionError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for ReconstructionError {}

impl From<GeometryError> for ReconstructionError {
    fn from(e: GeometryError) -> Self {
        ReconstructionError::Geometry(e)
    }
}

impl From<DeviceError> for ReconstructionError {
    fn from(e: DeviceError) -> Self {
        ReconstructionError::Device(e)
    }
}

/// Configuration of a reconstruction run.
#[derive(Clone, Debug)]
pub struct FdkConfig {
    /// Acquisition/reconstruction geometry (Table 1).
    pub geometry: CbctGeometry,
    /// Ramp-filter apodisation window.
    pub window: FilterWindow,
    /// Batch count `N_c` per group/device (the paper fixes 8).
    pub nc: usize,
    /// Simulated device executing the back-projection.
    pub device: DeviceSpec,
}

impl FdkConfig {
    /// A config with the paper's defaults (`N_c = 8`, Ram-Lak window,
    /// V100-16GB device).
    pub fn new(geometry: CbctGeometry) -> Self {
        FdkConfig {
            geometry,
            window: FilterWindow::RamLak,
            nc: 8,
            device: DeviceSpec::v100_16gb(),
        }
    }

    /// Builder: apodisation window.
    pub fn with_window(mut self, window: FilterWindow) -> Self {
        self.window = window;
        self
    }

    /// Builder: batch count.
    pub fn with_nc(mut self, nc: usize) -> Self {
        assert!(nc > 0, "batch count must be positive");
        self.nc = nc;
        self
    }

    /// Builder: device spec.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ReconstructionError> {
        self.geometry.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48));
        assert_eq!(c.nc, 8);
        assert_eq!(c.window, FilterWindow::RamLak);
        assert_eq!(c.device.name, "V100-16GB");
        c.validate().unwrap();
    }

    #[test]
    fn builders_apply() {
        let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48))
            .with_window(FilterWindow::Hann)
            .with_nc(4)
            .with_device(DeviceSpec::a100_40gb());
        assert_eq!(c.window, FilterWindow::Hann);
        assert_eq!(c.nc, 4);
        assert_eq!(c.device.name, "A100-40GB");
    }

    #[test]
    fn invalid_geometry_fails_validation() {
        let mut g = CbctGeometry::ideal(32, 16, 48, 48);
        g.np = 0;
        assert!(FdkConfig::new(g).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "batch count must be positive")]
    fn zero_nc_rejected() {
        let _ = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48)).with_nc(0);
    }
}
