//! Top-level configuration and errors.

use std::sync::Arc;

use scalefbp_exec::{CpuExecutor, ExecError, Executor, SimExecutor};
use scalefbp_faults::FaultInject;
use scalefbp_filter::FilterWindow;
use scalefbp_geom::{CbctGeometry, GeometryError};
use scalefbp_gpusim::{DeviceError, DeviceSpec};
use scalefbp_obs::MetricsRegistry;

pub use scalefbp_exec::{BackendChoice, FilterChoice, KernelChoice};
pub use scalefbp_mpisim::ReduceMode;

/// Errors from the reconstruction drivers.
#[derive(Debug)]
pub enum ReconstructionError {
    /// Invalid acquisition geometry.
    Geometry(GeometryError),
    /// The device cannot hold even a single-slice working set.
    DeviceTooSmall {
        /// Bytes needed for the minimal working set.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// A device operation failed.
    Device(DeviceError),
    /// Projection data does not match the geometry.
    ShapeMismatch(String),
    /// The checkpoint subsystem refused to open, read or commit — a
    /// corrupt manifest, a stale config fingerprint, or storage failure.
    Checkpoint(String),
    /// The run was killed by the chaos harness after committing
    /// checkpoints. Not a failure: a resumed run picks up from the
    /// committed slabs and produces the identical volume.
    Interrupted {
        /// Slab checkpoints this run committed before dying.
        completed_slabs: usize,
    },
    /// The configured compute backend refused the run (e.g. the
    /// wgpu-stub validates launches but cannot compute), or an
    /// executor operation failed outside the device error model.
    Backend(String),
}

impl std::fmt::Display for ReconstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructionError::Geometry(e) => write!(f, "geometry error: {e}"),
            ReconstructionError::DeviceTooSmall { needed, capacity } => write!(
                f,
                "device too small: minimal working set {needed} B exceeds capacity {capacity} B"
            ),
            ReconstructionError::Device(e) => write!(f, "device error: {e}"),
            ReconstructionError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
            ReconstructionError::Checkpoint(what) => write!(f, "checkpoint error: {what}"),
            ReconstructionError::Interrupted { completed_slabs } => write!(
                f,
                "run interrupted by chaos kill switch after {completed_slabs} checkpointed slab(s)"
            ),
            ReconstructionError::Backend(what) => write!(f, "backend error: {what}"),
        }
    }
}

impl std::error::Error for ReconstructionError {}

impl From<GeometryError> for ReconstructionError {
    fn from(e: GeometryError) -> Self {
        ReconstructionError::Geometry(e)
    }
}

impl From<DeviceError> for ReconstructionError {
    fn from(e: DeviceError) -> Self {
        ReconstructionError::Device(e)
    }
}

impl From<scalefbp_ckpt::CheckpointError> for ReconstructionError {
    fn from(e: scalefbp_ckpt::CheckpointError) -> Self {
        ReconstructionError::Checkpoint(e.to_string())
    }
}

impl From<ExecError> for ReconstructionError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::Device(d) => ReconstructionError::Device(d),
            other => ReconstructionError::Backend(other.to_string()),
        }
    }
}

// `KernelChoice`, `FilterChoice` and `BackendChoice` are defined in
// `scalefbp-exec` (the executors dispatch on them) and re-exported above
// unchanged, so the pre-executor public API is preserved.

/// Configuration of a reconstruction run.
#[derive(Clone, Debug)]
pub struct FdkConfig {
    /// Acquisition/reconstruction geometry (Table 1).
    pub geometry: CbctGeometry,
    /// Ramp-filter apodisation window.
    pub window: FilterWindow,
    /// Batch count `N_c` per group/device (the paper fixes 8).
    pub nc: usize,
    /// Simulated device executing the back-projection.
    pub device: DeviceSpec,
    /// Back-projection kernel the drivers dispatch to.
    pub kernel: KernelChoice,
    /// Filtering execution strategy.
    pub filter: FilterChoice,
    /// Reduction algorithm for the distributed drivers. The default
    /// ([`ReduceMode::Hierarchical`]) reproduces the pre-existing
    /// tree-reduce behaviour bit-for-bit; see `docs/communication.md`.
    pub reduce_mode: ReduceMode,
    /// Compute backend the drivers execute on. The default
    /// ([`BackendChoice::Sim`]) reproduces the pre-executor `gpusim`
    /// accounting exactly; `Cpu` produces bitwise-identical volumes
    /// with zero modelled time (see `docs/backends.md`).
    pub backend: BackendChoice,
    /// Multiplier applied to the perf-model batch estimate when the
    /// fault-tolerant driver derives its failure-detection deadlines
    /// (see [`derive_deadlines`](crate::derive_deadlines)): a deadline
    /// is `timeout_scale ×` the modelled time of the awaited work,
    /// floored at the legacy constants so tiny problems keep their old
    /// detection latency. Larger values tolerate slower stragglers
    /// before speculating; must be finite and positive.
    pub timeout_scale: f64,
}

impl FdkConfig {
    /// A config with the paper's defaults (`N_c = 8`, Ram-Lak window,
    /// V100-16GB device, parallel kernel, two-pass filter).
    pub fn new(geometry: CbctGeometry) -> Self {
        FdkConfig {
            geometry,
            window: FilterWindow::RamLak,
            nc: 8,
            device: DeviceSpec::v100_16gb(),
            kernel: KernelChoice::default(),
            filter: FilterChoice::default(),
            reduce_mode: ReduceMode::default(),
            backend: BackendChoice::default(),
            timeout_scale: 2.0,
        }
    }

    /// Builder: apodisation window.
    pub fn with_window(mut self, window: FilterWindow) -> Self {
        self.window = window;
        self
    }

    /// Builder: batch count.
    pub fn with_nc(mut self, nc: usize) -> Self {
        assert!(nc > 0, "batch count must be positive");
        self.nc = nc;
        self
    }

    /// Builder: device spec.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Builder: back-projection kernel.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: filtering strategy.
    pub fn with_filter(mut self, filter: FilterChoice) -> Self {
        self.filter = filter;
        self
    }

    /// Builder: distributed reduction algorithm.
    pub fn with_reduce_mode(mut self, reduce_mode: ReduceMode) -> Self {
        self.reduce_mode = reduce_mode;
        self
    }

    /// Builder: compute backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Builder: deadline multiplier for the fault-tolerant driver.
    pub fn with_timeout_scale(mut self, timeout_scale: f64) -> Self {
        assert!(
            timeout_scale.is_finite() && timeout_scale > 0.0,
            "timeout scale must be finite and positive"
        );
        self.timeout_scale = timeout_scale;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ReconstructionError> {
        self.geometry.validate()?;
        Ok(())
    }

    /// Builds the configured compute backend: `sim` wraps a simulated
    /// device of [`self.device`](FdkConfig::device) that consults
    /// `injector` (as `rank`) and records rank-labelled `gpu.*` metrics
    /// into `registry`; `cpu` records byte-domain metrics only. The
    /// wgpu stub validates launches but cannot compute, so asking a
    /// driver to run on it fails here with
    /// [`ReconstructionError::Backend`].
    pub fn build_executor(
        &self,
        injector: Arc<dyn FaultInject>,
        rank: usize,
        registry: MetricsRegistry,
    ) -> Result<Arc<dyn Executor>, ReconstructionError> {
        match self.backend {
            BackendChoice::Sim => Ok(Arc::new(SimExecutor::with_observability(
                self.device.clone(),
                injector,
                rank,
                registry,
            ))),
            BackendChoice::Cpu => Ok(Arc::new(CpuExecutor::with_observability(rank, registry))),
            BackendChoice::WgpuStub => Err(ReconstructionError::Backend(
                "the wgpu-stub backend validates launch descriptors but cannot compute; \
                 select backend sim or cpu for reconstruction"
                    .to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48));
        assert_eq!(c.nc, 8);
        assert_eq!(c.window, FilterWindow::RamLak);
        assert_eq!(c.device.name, "V100-16GB");
        assert_eq!(c.kernel, KernelChoice::Parallel);
        assert_eq!(c.filter, FilterChoice::TwoPass);
        assert_eq!(c.reduce_mode, ReduceMode::Hierarchical);
        assert_eq!(c.timeout_scale, 2.0);
        c.validate().unwrap();
    }

    #[test]
    fn reduce_mode_builder_and_names_round_trip() {
        for mode in ReduceMode::ALL {
            let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48)).with_reduce_mode(mode);
            assert_eq!(c.reduce_mode, mode);
            assert_eq!(mode.name().parse::<ReduceMode>().unwrap(), mode);
        }
        let err = "ring".parse::<ReduceMode>().unwrap_err();
        assert!(err.contains("unknown reduce mode"), "{err}");
    }

    #[test]
    fn kernel_and_filter_choices_round_trip_through_names() {
        for k in KernelChoice::ALL {
            assert_eq!(k.name().parse::<KernelChoice>().unwrap(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        for f in [FilterChoice::TwoPass, FilterChoice::Fused] {
            assert_eq!(f.name().parse::<FilterChoice>().unwrap(), f);
        }
        assert_eq!("twopass".parse::<FilterChoice>(), Ok(FilterChoice::TwoPass));
        assert!("warp".parse::<KernelChoice>().is_err());
        assert!("triple".parse::<FilterChoice>().is_err());
    }

    #[test]
    fn builders_apply() {
        let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48))
            .with_window(FilterWindow::Hann)
            .with_nc(4)
            .with_device(DeviceSpec::a100_40gb());
        assert_eq!(c.window, FilterWindow::Hann);
        assert_eq!(c.nc, 4);
        assert_eq!(c.device.name, "A100-40GB");
    }

    #[test]
    fn invalid_geometry_fails_validation() {
        let mut g = CbctGeometry::ideal(32, 16, 48, 48);
        g.np = 0;
        assert!(FdkConfig::new(g).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "batch count must be positive")]
    fn zero_nc_rejected() {
        let _ = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48)).with_nc(0);
    }

    #[test]
    #[should_panic(expected = "timeout scale must be finite and positive")]
    fn non_positive_timeout_scale_rejected() {
        let _ = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48)).with_timeout_scale(0.0);
    }
}
