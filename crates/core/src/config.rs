//! Top-level configuration and errors.

use scalefbp_filter::FilterWindow;
use scalefbp_geom::{CbctGeometry, GeometryError};
use scalefbp_gpusim::{DeviceError, DeviceSpec};

pub use scalefbp_mpisim::ReduceMode;

/// Errors from the reconstruction drivers.
#[derive(Debug)]
pub enum ReconstructionError {
    /// Invalid acquisition geometry.
    Geometry(GeometryError),
    /// The device cannot hold even a single-slice working set.
    DeviceTooSmall {
        /// Bytes needed for the minimal working set.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// A device operation failed.
    Device(DeviceError),
    /// Projection data does not match the geometry.
    ShapeMismatch(String),
    /// The checkpoint subsystem refused to open, read or commit — a
    /// corrupt manifest, a stale config fingerprint, or storage failure.
    Checkpoint(String),
    /// The run was killed by the chaos harness after committing
    /// checkpoints. Not a failure: a resumed run picks up from the
    /// committed slabs and produces the identical volume.
    Interrupted {
        /// Slab checkpoints this run committed before dying.
        completed_slabs: usize,
    },
}

impl std::fmt::Display for ReconstructionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructionError::Geometry(e) => write!(f, "geometry error: {e}"),
            ReconstructionError::DeviceTooSmall { needed, capacity } => write!(
                f,
                "device too small: minimal working set {needed} B exceeds capacity {capacity} B"
            ),
            ReconstructionError::Device(e) => write!(f, "device error: {e}"),
            ReconstructionError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
            ReconstructionError::Checkpoint(what) => write!(f, "checkpoint error: {what}"),
            ReconstructionError::Interrupted { completed_slabs } => write!(
                f,
                "run interrupted by chaos kill switch after {completed_slabs} checkpointed slab(s)"
            ),
        }
    }
}

impl std::error::Error for ReconstructionError {}

impl From<GeometryError> for ReconstructionError {
    fn from(e: GeometryError) -> Self {
        ReconstructionError::Geometry(e)
    }
}

impl From<DeviceError> for ReconstructionError {
    fn from(e: DeviceError) -> Self {
        ReconstructionError::Device(e)
    }
}

impl From<scalefbp_ckpt::CheckpointError> for ReconstructionError {
    fn from(e: scalefbp_ckpt::CheckpointError) -> Self {
        ReconstructionError::Checkpoint(e.to_string())
    }
}

/// Which back-projection kernel the drivers run.
///
/// All variants produce bit-identical volumes for the in-core and streaming
/// paths except [`Incremental`](KernelChoice::Incremental) and
/// [`SimdBatched`](KernelChoice::SimdBatched), whose reassociated f32
/// arithmetic drifts within the explicit bounds pinned in the backproject
/// crate's `contracts` module (see `docs/performance.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Algorithm 1 verbatim: the serial quadruple loop. Slow; the ground
    /// truth for equivalence testing.
    Reference,
    /// Register-accumulating slice-parallel kernel (Section 4.3.1).
    #[default]
    Parallel,
    /// The affine-increment kernel — fastest per-update arithmetic, *not*
    /// bit-identical. Streaming drivers fall back to the windowed kernel.
    Incremental,
    /// Cache-blocked hot path: `(i, j)` tiles with projection-outer
    /// iteration and hoisted row constants. Bit-identical to `Parallel`.
    Blocked,
    /// Explicit f32x8 SIMD over the blocked tiles (AVX2 with runtime
    /// detection, portable scalar twin otherwise). Bit-identical to
    /// `Parallel` on either backend.
    Simd,
    /// The SIMD kernel with projection batching: `P` projections
    /// accumulate in a register partial per voxel pass. Fastest; drift vs
    /// `Parallel` is ULP-bounded, *not* bitwise.
    SimdBatched,
}

impl KernelChoice {
    /// All selectable kernels, in benchmark display order.
    pub const ALL: [KernelChoice; 6] = [
        KernelChoice::Reference,
        KernelChoice::Parallel,
        KernelChoice::Incremental,
        KernelChoice::Blocked,
        KernelChoice::Simd,
        KernelChoice::SimdBatched,
    ];

    /// Stable lowercase name (used in CLI flags and BENCH JSON).
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Reference => "reference",
            KernelChoice::Parallel => "parallel",
            KernelChoice::Incremental => "incremental",
            KernelChoice::Blocked => "blocked",
            KernelChoice::Simd => "simd",
            KernelChoice::SimdBatched => "simd-batched",
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(KernelChoice::Reference),
            "parallel" => Ok(KernelChoice::Parallel),
            "incremental" => Ok(KernelChoice::Incremental),
            "blocked" => Ok(KernelChoice::Blocked),
            "simd" => Ok(KernelChoice::Simd),
            "simd-batched" => Ok(KernelChoice::SimdBatched),
            other => Err(format!(
                "unknown kernel '{other}' (expected reference|parallel|incremental|blocked|simd|simd-batched)"
            )),
        }
    }
}

/// How the ramp-filtering stage is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FilterChoice {
    /// Weight+convolve, then a second scaling pass (the original shape).
    #[default]
    TwoPass,
    /// Single fused pass with the scale folded into the frequency response
    /// and zero per-row allocations. Matches TwoPass to a few f32 ULP.
    Fused,
}

impl FilterChoice {
    /// Stable lowercase name (used in CLI flags and BENCH JSON).
    pub fn name(self) -> &'static str {
        match self {
            FilterChoice::TwoPass => "two-pass",
            FilterChoice::Fused => "fused",
        }
    }
}

impl std::fmt::Display for FilterChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FilterChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "two-pass" | "twopass" => Ok(FilterChoice::TwoPass),
            "fused" => Ok(FilterChoice::Fused),
            other => Err(format!(
                "unknown filter mode '{other}' (expected two-pass|fused)"
            )),
        }
    }
}

/// Configuration of a reconstruction run.
#[derive(Clone, Debug)]
pub struct FdkConfig {
    /// Acquisition/reconstruction geometry (Table 1).
    pub geometry: CbctGeometry,
    /// Ramp-filter apodisation window.
    pub window: FilterWindow,
    /// Batch count `N_c` per group/device (the paper fixes 8).
    pub nc: usize,
    /// Simulated device executing the back-projection.
    pub device: DeviceSpec,
    /// Back-projection kernel the drivers dispatch to.
    pub kernel: KernelChoice,
    /// Filtering execution strategy.
    pub filter: FilterChoice,
    /// Reduction algorithm for the distributed drivers. The default
    /// ([`ReduceMode::Hierarchical`]) reproduces the pre-existing
    /// tree-reduce behaviour bit-for-bit; see `docs/communication.md`.
    pub reduce_mode: ReduceMode,
}

impl FdkConfig {
    /// A config with the paper's defaults (`N_c = 8`, Ram-Lak window,
    /// V100-16GB device, parallel kernel, two-pass filter).
    pub fn new(geometry: CbctGeometry) -> Self {
        FdkConfig {
            geometry,
            window: FilterWindow::RamLak,
            nc: 8,
            device: DeviceSpec::v100_16gb(),
            kernel: KernelChoice::default(),
            filter: FilterChoice::default(),
            reduce_mode: ReduceMode::default(),
        }
    }

    /// Builder: apodisation window.
    pub fn with_window(mut self, window: FilterWindow) -> Self {
        self.window = window;
        self
    }

    /// Builder: batch count.
    pub fn with_nc(mut self, nc: usize) -> Self {
        assert!(nc > 0, "batch count must be positive");
        self.nc = nc;
        self
    }

    /// Builder: device spec.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Builder: back-projection kernel.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: filtering strategy.
    pub fn with_filter(mut self, filter: FilterChoice) -> Self {
        self.filter = filter;
        self
    }

    /// Builder: distributed reduction algorithm.
    pub fn with_reduce_mode(mut self, reduce_mode: ReduceMode) -> Self {
        self.reduce_mode = reduce_mode;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ReconstructionError> {
        self.geometry.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48));
        assert_eq!(c.nc, 8);
        assert_eq!(c.window, FilterWindow::RamLak);
        assert_eq!(c.device.name, "V100-16GB");
        assert_eq!(c.kernel, KernelChoice::Parallel);
        assert_eq!(c.filter, FilterChoice::TwoPass);
        assert_eq!(c.reduce_mode, ReduceMode::Hierarchical);
        c.validate().unwrap();
    }

    #[test]
    fn reduce_mode_builder_and_names_round_trip() {
        for mode in ReduceMode::ALL {
            let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48)).with_reduce_mode(mode);
            assert_eq!(c.reduce_mode, mode);
            assert_eq!(mode.name().parse::<ReduceMode>().unwrap(), mode);
        }
        let err = "ring".parse::<ReduceMode>().unwrap_err();
        assert!(err.contains("unknown reduce mode"), "{err}");
    }

    #[test]
    fn kernel_and_filter_choices_round_trip_through_names() {
        for k in KernelChoice::ALL {
            assert_eq!(k.name().parse::<KernelChoice>().unwrap(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        for f in [FilterChoice::TwoPass, FilterChoice::Fused] {
            assert_eq!(f.name().parse::<FilterChoice>().unwrap(), f);
        }
        assert_eq!("twopass".parse::<FilterChoice>(), Ok(FilterChoice::TwoPass));
        assert!("warp".parse::<KernelChoice>().is_err());
        assert!("triple".parse::<FilterChoice>().is_err());
    }

    #[test]
    fn builders_apply() {
        let c = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48))
            .with_window(FilterWindow::Hann)
            .with_nc(4)
            .with_device(DeviceSpec::a100_40gb());
        assert_eq!(c.window, FilterWindow::Hann);
        assert_eq!(c.nc, 4);
        assert_eq!(c.device.name, "A100-40GB");
    }

    #[test]
    fn invalid_geometry_fails_validation() {
        let mut g = CbctGeometry::ideal(32, 16, 48, 48);
        g.np = 0;
        assert!(FdkConfig::new(g).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "batch count must be positive")]
    fn zero_nc_rejected() {
        let _ = FdkConfig::new(CbctGeometry::ideal(32, 16, 48, 48)).with_nc(0);
    }
}
