//! Distributed iterative reconstruction (SIRT / MLEM) on the segmented
//! collective — ROADMAP item 3.
//!
//! The serial solvers in `scalefbp-iterative` alternate a forward
//! projection `A·x`, an elementwise residual/ratio pass, a
//! back-projection `Aᵀ`, and an elementwise update. This driver shards
//! the two operators across simulated MPI ranks using the same
//! contiguous row-range partition as the FDK drivers
//! ([`segment_partition`]):
//!
//! * **Forward projection** is sharded by detector rows `v`: each pixel
//!   is independent, so rank `r` computes its row range with
//!   [`forward_project_rows`] and the full stack is reassembled by a
//!   rank-ordered allgather — pure concatenation, bitwise exact.
//! * **Back-projection** is sharded by volume z-slabs: each rank runs
//!   [`backproject_unfiltered_slabs`] over its slab into a zeroed
//!   full-size buffer, leaving every foreign voxel at `+0.0`. Because
//!   each voxel's serial sum over projections happens entirely on its
//!   owner, the per-rank buffers have *disjoint support*, and any
//!   canonical rank-ordered fold of them reproduces the serial
//!   back-projection bit-for-bit (`0.0 + v ≡ v`; accumulating into a
//!   zeroed volume means no `-0.0` survives to spoil the identity).
//! * The **per-iteration merge** of those correction buffers is the
//!   `--reduce-mode` choice: the paper's chain-pipelined
//!   [`Communicator::segmented_reduce_scatter_f32`] followed by a
//!   segment allgather, the flat canonical dense reduce, or the
//!   canonical hierarchical reduce. All three share the ascending-rank
//!   fold contract, so **every (ranks, reduce-mode) cell yields the
//!   bitwise-identical iterate** — including the residual history, which
//!   every rank recomputes redundantly over the allgathered stack with
//!   the serial f64 summation order.
//!
//! Long runs checkpoint the full iterate plus residual history through
//! `scalefbp-ckpt` once per `--checkpoint-every` iterations (manifest
//! slab key = iteration index). Because the iterate is rank-count- and
//! reduce-mode-invariant, a checkpoint written by a 4-rank segmented run
//! may be resumed by a 2-rank dense run and still finish bitwise
//! identical to an uninterrupted serial solve — the conformance grid in
//! `tests/iterative_distributed.rs` pins exactly that.

use std::sync::Arc;

use scalefbp_ckpt::{fingerprint, CheckpointSpec, CheckpointStore};
use scalefbp_faults::NoFaults;
use scalefbp_geom::{CbctGeometry, ProjectionStack, Volume};
use scalefbp_iosim::StorageEndpoint;
use scalefbp_iterative::{
    backproject_unfiltered_slabs, forward_project_rows, Mlem, RayMarchConfig, Sirt,
};
use scalefbp_mpisim::{hierarchical_reduce_sum_canonical, segment_partition, NetworkStats, World};
use scalefbp_obs::{MetricsRegistry, MetricsSnapshot};

use crate::{ReconstructionError, ReduceMode};

/// Which iterative solver to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IterativeSolver {
    /// SIRT with the given relaxation factor λ ∈ (0, 2].
    Sirt {
        /// Relaxation factor λ.
        relaxation: f32,
    },
    /// Multiplicative MLEM.
    Mlem,
}

impl IterativeSolver {
    /// Canonical name (CLI/bench/fingerprint spelling).
    pub fn name(self) -> &'static str {
        match self {
            IterativeSolver::Sirt { .. } => "sirt",
            IterativeSolver::Mlem => "mlem",
        }
    }
}

/// Configuration of a distributed iterative run.
#[derive(Clone, Debug)]
pub struct IterativeConfig {
    /// Solver choice.
    pub solver: IterativeSolver,
    /// Ray-marching discretisation of the forward projector.
    pub march: RayMarchConfig,
    /// Total iterations to perform (including any resumed ones).
    pub iterations: usize,
    /// Simulated MPI ranks.
    pub ranks: usize,
    /// Per-iteration correction-merge collective.
    pub reduce_mode: ReduceMode,
    /// Optional crash-consistent checkpointing.
    pub checkpoint: Option<(StorageEndpoint, CheckpointSpec)>,
}

impl IterativeConfig {
    /// A serial-equivalent single-rank run with `iterations` iterations.
    pub fn new(solver: IterativeSolver, iterations: usize) -> Self {
        IterativeConfig {
            solver,
            march: RayMarchConfig::default(),
            iterations,
            ranks: 1,
            reduce_mode: ReduceMode::Segmented,
            checkpoint: None,
        }
    }
}

/// Result of a distributed iterative run.
#[derive(Debug)]
pub struct IterativeOutcome {
    /// The final iterate (bitwise identical to the serial solver's).
    pub volume: Volume,
    /// Residual/deviation history, one entry per iteration performed —
    /// resumed entries included, bitwise the serial `run()` history.
    pub residuals: Vec<f64>,
    /// Iterations restored from a checkpoint rather than recomputed.
    pub resumed_iterations: usize,
    /// Aggregate simulated network traffic.
    pub network: NetworkStats,
    /// Merged metrics snapshot (`iter.*`, `mpisim.*`, `ckpt.*`).
    pub metrics: MetricsSnapshot,
}

/// Everything that determines the iterate's output bits: the full
/// geometry, the ray-march step, and the solver (with its relaxation).
/// Rank count and reduce mode are deliberately *excluded* — the driver
/// is bitwise invariant to both, so checkpoints are portable across
/// layouts (see the cross-layout resume test).
pub fn iterative_fingerprint(
    geom: &CbctGeometry,
    solver: IterativeSolver,
    march: RayMarchConfig,
) -> u64 {
    let relax_bits = match solver {
        IterativeSolver::Sirt { relaxation } => relaxation.to_bits(),
        IterativeSolver::Mlem => 0,
    };
    let canonical = format!(
        "driver=iterative;solver={};relax={relax_bits:08x};step={:016x};\
         dso={};dsd={};np={};nu={};nv={};du={};dv={};\
         nx={};ny={};nz={};dx={};dy={};dz={};su={};sv={};scor={}",
        solver.name(),
        march.step_frac.to_bits(),
        geom.dso,
        geom.dsd,
        geom.np,
        geom.nu,
        geom.nv,
        geom.du,
        geom.dv,
        geom.nx,
        geom.ny,
        geom.nz,
        geom.dx,
        geom.dy,
        geom.dz,
        geom.sigma_u,
        geom.sigma_v,
        geom.sigma_cor,
    );
    fingerprint(&canonical)
}

/// Either serial solver behind one face, so the rank loop is written once.
enum Solver {
    Sirt(Sirt),
    Mlem(Mlem),
}

impl Solver {
    fn build(geom: &CbctGeometry, kind: IterativeSolver, march: RayMarchConfig) -> Solver {
        match kind {
            IterativeSolver::Sirt { relaxation } => {
                Solver::Sirt(Sirt::new(geom, march, relaxation))
            }
            IterativeSolver::Mlem => Solver::Mlem(Mlem::new(geom, march)),
        }
    }

    fn estimate(&self) -> &Volume {
        match self {
            Solver::Sirt(s) => s.estimate(),
            Solver::Mlem(m) => m.estimate(),
        }
    }

    fn restore(&mut self, x: Volume, iterations: usize) {
        match self {
            Solver::Sirt(s) => s.restore(x, iterations),
            Solver::Mlem(m) => m.restore(x, iterations),
        }
    }

    /// The elementwise residual/ratio pass over a forward-projected
    /// stack — the serial solver's own code, run on the full stack.
    fn weigh(&self, fp: &mut ProjectionStack, b: &ProjectionStack) -> f64 {
        match self {
            Solver::Sirt(s) => s.weight_residual(fp, b),
            Solver::Mlem(m) => m.ratio(fp, b),
        }
    }

    /// The elementwise update pass — the serial solver's own code.
    fn apply(&mut self, correction: &Volume) {
        match self {
            Solver::Sirt(s) => s.apply_correction(correction),
            Solver::Mlem(m) => m.apply_correction(correction),
        }
    }
}

/// Iterate + residual history → checkpoint payload. Layout: `n·4` bytes
/// of little-endian f32 voxels, then one little-endian f64 per completed
/// iteration; the iteration count rides in the manifest slab key.
fn iterate_to_bytes(x: &Volume, residuals: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(x.len() * 4 + residuals.len() * 8);
    for v in x.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    for r in residuals {
        bytes.extend_from_slice(&r.to_le_bytes());
    }
    bytes
}

fn iterate_from_bytes(
    geom: &CbctGeometry,
    iterations: usize,
    bytes: &[u8],
) -> Result<(Volume, Vec<f64>), ReconstructionError> {
    let n = geom.nx * geom.ny * geom.nz;
    if bytes.len() != n * 4 + iterations * 8 {
        return Err(ReconstructionError::Checkpoint(format!(
            "iterate payload for iteration {iterations} is {} B, expected {}",
            bytes.len(),
            n * 4 + iterations * 8
        )));
    }
    let mut x = Volume::zeros(geom.nx, geom.ny, geom.nz);
    for (dst, src) in x.data_mut().iter_mut().zip(bytes[..n * 4].chunks_exact(4)) {
        *dst = f32::from_le_bytes([src[0], src[1], src[2], src[3]]);
    }
    let residuals = bytes[n * 4..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Ok((x, residuals))
}

/// Latest checkpointed iteration `≤ limit` in the manifest, if any.
fn latest_checkpointed_iteration(store: &CheckpointStore, limit: usize) -> Option<usize> {
    store
        .manifest()
        .committed_ranges()
        .into_iter()
        .filter(|&(i0, i1)| i1 == i0 + 1 && i1 <= limit)
        .map(|(_, i1)| i1)
        .max()
}

/// What rank 0 decided after the per-iteration checkpoint attempt,
/// broadcast to keep every rank in lockstep.
const FLAG_CONTINUE: u8 = 0;
const FLAG_KILLED: u8 = 1;
const FLAG_CKPT_ERROR: u8 = 2;

struct RankResult {
    /// Rank 0's final state; `None` on other ranks.
    output: Option<(Volume, Vec<f64>)>,
    killed: bool,
    saves: usize,
    ckpt_error: Option<String>,
}

/// Runs `config.iterations` of the chosen solver against sinogram `b`,
/// sharded over `config.ranks` simulated ranks, merging per-iteration
/// corrections with the chosen [`ReduceMode`] collective. The outcome is
/// bitwise identical to the serial [`Sirt`]/[`Mlem`] `run()` for every
/// rank count and every reduce mode.
pub fn iterative_reconstruct_distributed(
    geom: &CbctGeometry,
    b: &ProjectionStack,
    config: &IterativeConfig,
) -> Result<IterativeOutcome, ReconstructionError> {
    assert!(config.ranks >= 1, "need at least one rank");
    if (b.nv(), b.np(), b.nu()) != (geom.nv, geom.np, geom.nu) {
        return Err(ReconstructionError::ShapeMismatch(format!(
            "sinogram {}×{}×{} does not match geometry {}×{}×{}",
            b.nv(),
            b.np(),
            b.nu(),
            geom.nv,
            geom.np,
            geom.nu
        )));
    }
    let config_fp = iterative_fingerprint(geom, config.solver, config.march);
    let registry = MetricsRegistry::new();

    // Resume (serial, before the world): load the latest committed
    // iterate so rank-local solver state can start from it.
    let mut start_iter = 0usize;
    let mut start_state: Option<(Volume, Vec<f64>)> = None;
    if let Some((endpoint, spec)) = &config.checkpoint {
        if spec.resume {
            let store = CheckpointStore::open_or_create(endpoint, &spec.dir, config_fp)
                .map_err(|e| ReconstructionError::Checkpoint(e.to_string()))?;
            if let Some(done) = latest_checkpointed_iteration(&store, config.iterations) {
                let payload = store
                    .load_slab((done - 1, done), None)
                    .map_err(|e| ReconstructionError::Checkpoint(e.to_string()))?;
                let (x, residuals) = iterate_from_bytes(geom, done, &payload)?;
                registry.counter("iter.resumed.iterations").add(done as u64);
                start_iter = done;
                start_state = Some((x, residuals));
            }
        }
    }

    let p = config.ranks;
    let total = config.iterations;
    let v_parts = segment_partition(geom.nv, p);
    let z_parts = segment_partition(geom.nz, p);
    let row_stride = geom.np * geom.nu;
    let slice_len = geom.nx * geom.ny;
    let n_vox = slice_len * geom.nz;
    let counts: Vec<usize> = z_parts.iter().map(|r| r.len() * slice_len).collect();
    let start_state = &start_state;

    let (results, network) = World::run_with_observability(
        p,
        Arc::new(NoFaults),
        registry.clone(),
        |mut comm| -> RankResult {
            let rank = comm.rank();
            let metrics = comm.metrics().clone();
            let fproj_pixels = metrics.rank_counter("iter.fproj.pixels", rank);
            let bproj_voxels = metrics.rank_counter("iter.bproj.voxels", rank);
            let reduce_calls = metrics.rank_counter("iter.reduce.calls", rank);
            let reduce_elements = metrics.rank_counter("iter.reduce.elements", rank);
            let iterations_ctr = metrics.counter("iter.iterations");
            let ckpt_iters = metrics.counter("iter.ckpt.iterations");

            // Every rank builds the solver redundantly: the row/column
            // normalisations are deterministic functions of the geometry,
            // so all ranks start from the identical state.
            let mut solver = Solver::build(geom, config.solver, config.march);
            let mut residuals = Vec::new();
            if let Some((x, hist)) = start_state {
                solver.restore(x.clone(), start_iter);
                residuals = hist.clone();
            }
            // Only rank 0 touches the checkpoint store.
            let mut store: Option<(CheckpointStore, &CheckpointSpec)> = None;
            let mut ckpt_error = None;
            if rank == 0 {
                if let Some((endpoint, spec)) = &config.checkpoint {
                    match CheckpointStore::open_or_create(endpoint, &spec.dir, config_fp) {
                        Ok(s) => store = Some((s, spec)),
                        Err(e) => ckpt_error = Some(e.to_string()),
                    }
                }
            }

            let (v0, v1) = (v_parts[rank].start, v_parts[rank].end);
            let (z0, z1) = (z_parts[rank].start, z_parts[rank].end);
            let mut killed = false;

            for it in start_iter..total {
                if ckpt_error.is_some() {
                    break;
                }
                // 1. Forward-project this rank's detector rows.
                let my_rows = forward_project_rows(geom, solver.estimate(), config.march, v0, v1);
                fproj_pixels.add(my_rows.len() as u64);

                // 2. Allgather the rows: every rank assembles the full
                //    `A·x` stack by rank-ordered concatenation.
                let mut stack = ProjectionStack::zeros(geom.nv, geom.np, geom.nu);
                for (owner, seg) in v_parts.iter().enumerate() {
                    let dst = &mut stack.data_mut()[seg.start * row_stride..seg.end * row_stride];
                    if owner == rank {
                        dst.copy_from_slice(&my_rows);
                    }
                    comm.bcast_f32(owner, dst).expect("row allgather failed");
                }

                // 3. Elementwise residual/ratio over the full stack —
                //    redundant on every rank, bitwise the serial pass
                //    (including the f64 scalar's summation order).
                let scalar = solver.weigh(&mut stack, b);
                residuals.push(scalar);

                // 4. Back-project this rank's z-slab into a zeroed
                //    full-size correction buffer (disjoint support).
                let mut correction = Volume::zeros(geom.nx, geom.ny, geom.nz);
                backproject_unfiltered_slabs(geom, &stack, &mut correction, z0, z1);
                bproj_voxels.add(((z1 - z0) * slice_len) as u64);

                // 5. Merge the corrections with the chosen canonical
                //    collective; afterwards every rank holds the full,
                //    serially-identical correction volume.
                reduce_calls.inc();
                reduce_elements.add(n_vox as u64);
                match config.reduce_mode {
                    ReduceMode::Dense => {
                        comm.reduce_sum_f32_canonical(0, correction.data_mut())
                            .expect("dense canonical reduce failed");
                        comm.bcast_f32(0, correction.data_mut())
                            .expect("correction broadcast failed");
                    }
                    ReduceMode::Hierarchical => {
                        let rpn = if p > 1 { 2 } else { 1 };
                        hierarchical_reduce_sum_canonical(&mut comm, 0, correction.data_mut(), rpn)
                            .expect("hierarchical canonical reduce failed");
                        comm.bcast_f32(0, correction.data_mut())
                            .expect("correction broadcast failed");
                    }
                    ReduceMode::Segmented => {
                        let own = comm
                            .segmented_reduce_scatter_f32(correction.data(), &counts, slice_len)
                            .expect("segmented reduce-scatter failed");
                        let full = comm
                            .allgather_f32_segments(&own, &counts)
                            .expect("segment allgather failed");
                        correction.data_mut().copy_from_slice(&full);
                    }
                }

                // 6. Elementwise update — redundant on every rank, so all
                //    ranks hold the identical next iterate.
                solver.apply(&correction);
                if rank == 0 {
                    iterations_ctr.inc();
                }

                // 7. Rank 0 checkpoints at the cadence boundary and
                //    broadcasts the verdict so all ranks stay in lockstep
                //    (continue / chaos-kill / checkpoint failure).
                let mut flag = vec![FLAG_CONTINUE];
                if rank == 0 {
                    if let Some((store, spec)) = store.as_mut() {
                        let done = it + 1;
                        if done % spec.every == 0 || done == total {
                            let payload = iterate_to_bytes(solver.estimate(), &residuals);
                            match store.save_slab(done - 1, done, &payload) {
                                Ok(()) => {
                                    ckpt_iters.inc();
                                    if let Some(k) = spec.kill_after_saves {
                                        if store.saves_this_run() >= k {
                                            flag[0] = FLAG_KILLED;
                                        }
                                    }
                                }
                                Err(e) => {
                                    ckpt_error = Some(e.to_string());
                                    flag[0] = FLAG_CKPT_ERROR;
                                }
                            }
                        }
                    }
                }
                comm.bcast(0, &mut flag);
                match flag[0] {
                    FLAG_KILLED => {
                        killed = true;
                        break;
                    }
                    FLAG_CKPT_ERROR => break,
                    _ => {}
                }
            }

            let saves = store.as_ref().map_or(0, |(s, _)| s.saves_this_run());
            RankResult {
                output: (rank == 0).then(|| {
                    let x = solver.estimate().clone();
                    (x, residuals)
                }),
                killed,
                saves,
                ckpt_error,
            }
        },
    );

    let mut root = results
        .into_iter()
        .next()
        .expect("world returns rank 0's result");
    if let Some(e) = root.ckpt_error.take() {
        return Err(ReconstructionError::Checkpoint(e));
    }
    if root.killed {
        return Err(ReconstructionError::Interrupted {
            completed_slabs: root.saves,
        });
    }
    let (volume, residuals) = root.output.expect("rank 0 carries the iterate");
    Ok(IterativeOutcome {
        volume,
        residuals,
        resumed_iterations: start_iter,
        network,
        metrics: registry.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalefbp_phantom::{forward_project, uniform_ball};

    fn fixture() -> (CbctGeometry, ProjectionStack) {
        let g = CbctGeometry::ideal(12, 8, 20, 18);
        let b = forward_project(&g, &uniform_ball(&g, 0.55, 1.0));
        (g, b)
    }

    fn assert_bits(a: &Volume, b: &Volume) {
        assert!(
            a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "volumes differ"
        );
    }

    #[test]
    fn single_rank_matches_serial_sirt_bitwise() {
        let (g, b) = fixture();
        let mut serial = Sirt::new(&g, RayMarchConfig::default(), 1.0);
        let hist = serial.run(&b, 3);
        let out = iterative_reconstruct_distributed(
            &g,
            &b,
            &IterativeConfig::new(IterativeSolver::Sirt { relaxation: 1.0 }, 3),
        )
        .unwrap();
        assert_bits(serial.estimate(), &out.volume);
        assert_eq!(
            hist.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            out.residuals
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn four_rank_segmented_matches_serial_mlem_bitwise() {
        let (g, b) = fixture();
        let mut serial = Mlem::new(&g, RayMarchConfig::default());
        let hist = serial.run(&b, 3);
        let mut cfg = IterativeConfig::new(IterativeSolver::Mlem, 3);
        cfg.ranks = 4;
        cfg.reduce_mode = ReduceMode::Segmented;
        let out = iterative_reconstruct_distributed(&g, &b, &cfg).unwrap();
        assert_bits(serial.estimate(), &out.volume);
        assert_eq!(
            hist.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            out.residuals
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<_>>()
        );
        let merges = out
            .metrics
            .counter("iter.reduce.calls", Some(0))
            .unwrap_or(0);
        assert_eq!(merges, 3);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let (g, _) = fixture();
        let bad = ProjectionStack::zeros(g.nv + 1, g.np, g.nu);
        let err = iterative_reconstruct_distributed(
            &g,
            &bad,
            &IterativeConfig::new(IterativeSolver::Mlem, 1),
        )
        .unwrap_err();
        assert!(matches!(err, ReconstructionError::ShapeMismatch(_)));
    }

    #[test]
    fn fingerprint_separates_solvers_and_geometry() {
        let g = CbctGeometry::ideal(12, 8, 20, 18);
        let g2 = CbctGeometry::ideal(14, 8, 20, 18);
        let m = RayMarchConfig::default();
        let s1 = iterative_fingerprint(&g, IterativeSolver::Sirt { relaxation: 1.0 }, m);
        let s2 = iterative_fingerprint(&g, IterativeSolver::Sirt { relaxation: 0.5 }, m);
        let ml = iterative_fingerprint(&g, IterativeSolver::Mlem, m);
        assert_ne!(s1, s2);
        assert_ne!(s1, ml);
        assert_ne!(
            s1,
            iterative_fingerprint(&g2, IterativeSolver::Sirt { relaxation: 1.0 }, m)
        );
    }
}
