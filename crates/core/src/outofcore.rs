//! Algorithm 3: out-of-core streaming reconstruction on one device.

use std::sync::Arc;

use scalefbp_backproject::{KernelStats, TextureWindow};
use scalefbp_ckpt::{resume_partition, CheckpointSpec, CheckpointStore};
use scalefbp_exec::{Executor, LaunchDescriptor};
use scalefbp_faults::NoFaults;
use scalefbp_filter::FilterPipeline;
use scalefbp_geom::{ProjectionMatrix, ProjectionStack, Volume, VolumeDecomposition};
use scalefbp_gpusim::DeviceCounters;
use scalefbp_iosim::StorageEndpoint;
use scalefbp_obs::{MetricsRegistry, MetricsSnapshot};
use scalefbp_pipeline::TraceCollector;

use crate::checkpoint::{config_fingerprint, slab_from_bytes, slab_to_bytes};
use crate::{FdkConfig, ReconstructionError};

/// Per-batch record of one out-of-core run (a row of Table 5, per batch).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OocBatch {
    /// Batch (sub-volume) index.
    pub index: usize,
    /// Detector rows newly moved host→device for this batch
    /// (`a₀b₀` for batch 0, the differential `b_{i-1}b_i` afterwards).
    pub rows_loaded: usize,
    /// Simulated H2D seconds.
    pub h2d_secs: f64,
    /// Simulated kernel seconds.
    pub bp_secs: f64,
    /// Simulated D2H seconds.
    pub d2h_secs: f64,
    /// Wall-clock seconds actually spent computing the batch.
    pub wall_secs: f64,
}

/// Outcome statistics of an out-of-core run.
#[derive(Clone, Debug)]
pub struct OutOfCoreReport {
    /// Slab thickness `N_b` chosen for the device.
    pub nb: usize,
    /// Ring-buffer height `H` (detector rows resident).
    pub window_rows: usize,
    /// Per-batch records.
    pub batches: Vec<OocBatch>,
    /// Device traffic counters.
    pub device: DeviceCounters,
    /// Aggregated kernel work counters.
    pub kernel: KernelStats,
    /// Total wall-clock seconds of the reconstruction.
    pub wall_secs: f64,
    /// Snapshot of the run's metrics registry (`gpu.*` plus the
    /// `ooc.*` slab-loop counters) — deterministic, exportable.
    pub metrics: MetricsSnapshot,
}

impl OutOfCoreReport {
    /// Back-projection throughput in GUPS over wall time — the paper's
    /// kernel metric (Table 5's Perf. column).
    pub fn wall_gups(&self) -> f64 {
        self.kernel.updates as f64 / self.wall_secs.max(1e-12) / 1e9
    }

    /// Total simulated device seconds (`T_H2D + T_bp + T_D2H`).
    pub fn simulated_gpu_secs(&self) -> f64 {
        self.batches
            .iter()
            .map(|b| b.h2d_secs + b.bp_secs + b.d2h_secs)
            .sum()
    }

    /// Deterministic model-time timeline of the serial slab loop:
    /// per batch, h2d → bp → d2h back to back in simulated seconds.
    /// Unlike the per-batch `wall_secs`, this is a pure function of the
    /// inputs and exports byte-identically across runs.
    pub fn serial_trace(&self) -> TraceCollector {
        let trace = TraceCollector::new();
        let mut t = 0.0;
        for b in &self.batches {
            trace.record("h2d", b.index, t, t + b.h2d_secs);
            t += b.h2d_secs;
            trace.record("bp", b.index, t, t + b.bp_secs);
            t += b.bp_secs;
            trace.record("d2h", b.index, t, t + b.d2h_secs);
            t += b.d2h_secs;
        }
        trace
    }
}

/// The streaming out-of-core reconstructor of Algorithm 3.
///
/// Chooses the largest slab thickness `N_b` whose working set — the
/// detector-row ring buffer `H·N_p·N_u`, one sub-volume slab
/// `N_x·N_y·N_b`, and the projection-matrix table — fits the simulated
/// device, then reconstructs slab by slab, moving each detector row to the
/// device **once** (the differential update of Eq 6–7). Output volumes may
/// exceed device memory by orders of magnitude (the paper builds 256 GB
/// volumes on a 16 GB V100).
pub struct OutOfCoreReconstructor {
    config: FdkConfig,
    exec: Arc<dyn Executor>,
    registry: MetricsRegistry,
    nb: usize,
    window_rows: usize,
}

impl OutOfCoreReconstructor {
    /// Plans a reconstructor for `config`. Fails with
    /// [`ReconstructionError::DeviceTooSmall`] if even a one-slice slab
    /// exceeds device memory.
    pub fn new(config: FdkConfig) -> Result<Self, ReconstructionError> {
        Self::with_observability(config, MetricsRegistry::new())
    }

    /// [`new`](Self::new) recording the device's `gpu.*` metrics and the
    /// slab loop's `ooc.*` counters into a caller-supplied registry.
    pub fn with_observability(
        config: FdkConfig,
        registry: MetricsRegistry,
    ) -> Result<Self, ReconstructionError> {
        config.validate()?;
        let g = &config.geometry;
        // Planning always follows the configured device spec, whatever
        // backend executes: the slab plan, streaming pattern and byte
        // counters stay backend-invariant (the conformance contract).
        let capacity = config.device.memory_bytes;
        let mats_bytes = (g.np * 12 * 4) as u64;

        // Start from the paper's N_b = N_z / N_c and shrink until the
        // working set fits.
        let mut nb = g.nz.div_ceil(config.nc).max(1);
        loop {
            let decomp = VolumeDecomposition::full(g, nb);
            let window_rows = decomp.max_rows().min(g.nv);
            let window_bytes = (window_rows * g.np * g.nu * 4) as u64;
            let slab_bytes = (g.nx * g.ny * nb * 4) as u64;
            let needed = window_bytes + slab_bytes + mats_bytes;
            if needed <= capacity {
                let exec = config.build_executor(Arc::new(NoFaults), 0, registry.clone())?;
                return Ok(OutOfCoreReconstructor {
                    exec,
                    config,
                    registry,
                    nb,
                    window_rows,
                });
            }
            if nb == 1 {
                return Err(ReconstructionError::DeviceTooSmall { needed, capacity });
            }
            nb = (nb / 2).max(1);
        }
    }

    /// The chosen slab thickness `N_b`.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// The ring-buffer height `H`.
    pub fn window_rows(&self) -> usize {
        self.window_rows
    }

    /// The compute backend (for inspecting counters mid-run).
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.exec
    }

    /// The registry this reconstructor reports into.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The sub-volume plan.
    pub fn plan(&self) -> VolumeDecomposition {
        VolumeDecomposition::full(&self.config.geometry, self.nb)
    }

    /// Runs the full reconstruction: filter on the "CPU", stream row
    /// windows to the device, back-project each slab, normalise, assemble.
    ///
    /// Bit-identical to [`crate::fdk_reconstruct_with`] on the same inputs
    /// (asserted by the integration tests) — the paper's criterion for the
    /// streaming kernel.
    pub fn reconstruct(
        &self,
        projections: &ProjectionStack,
    ) -> Result<(Volume, OutOfCoreReport), ReconstructionError> {
        self.reconstruct_inner(projections, None)
    }

    /// [`reconstruct`](Self::reconstruct) with crash-consistent slab
    /// checkpoints committed into `spec.dir` on `endpoint` every
    /// `spec.every` slabs. With `spec.resume`, slabs already committed by
    /// an earlier (interrupted) run are loaded instead of recomputed; the
    /// resumed volume is bitwise identical to an uninterrupted run. The
    /// chaos harness arms `spec.kill_after_saves` to abort mid-run with
    /// [`ReconstructionError::Interrupted`].
    pub fn reconstruct_checkpointed(
        &self,
        projections: &ProjectionStack,
        endpoint: &StorageEndpoint,
        spec: &CheckpointSpec,
    ) -> Result<(Volume, OutOfCoreReport), ReconstructionError> {
        self.reconstruct_inner(projections, Some((endpoint, spec)))
    }

    fn reconstruct_inner(
        &self,
        projections: &ProjectionStack,
        ckpt: Option<(&StorageEndpoint, &CheckpointSpec)>,
    ) -> Result<(Volume, OutOfCoreReport), ReconstructionError> {
        let g = &self.config.geometry;
        if projections.nv() != g.nv || projections.np() != g.np || projections.nu() != g.nu {
            return Err(ReconstructionError::ShapeMismatch(format!(
                "projections {}×{}×{} vs geometry {}×{}×{}",
                projections.nv(),
                projections.np(),
                projections.nu(),
                g.nv,
                g.np,
                g.nu
            )));
        }
        let run_start = std::time::Instant::now();

        // Filter stage (the paper's CPU-side thread).
        let pipeline = FilterPipeline::new(g, self.config.window);
        let mut filtered = projections.clone();
        self.exec
            .filter_stack(&pipeline, self.config.filter, &mut filtered)?;
        let scale = pipeline.backprojection_scale() as f32;

        let mats = ProjectionMatrix::full_scan(g);
        let decomp = self.plan();

        // Device-resident working set.
        let mat_buf = self.exec.alloc((g.np * 12 * 4) as u64)?;
        let window_bytes = (self.window_rows * g.np * g.nu * 4) as u64;
        let window_buf = self.exec.alloc(window_bytes)?;
        let mut window = TextureWindow::new(self.window_rows, g.np, g.nu, 0);

        // Checkpoint store + resume partition. `done` holds indices of
        // tasks whose slabs an earlier run already committed.
        let mut store: Option<CheckpointStore> = None;
        let mut done: Vec<usize> = Vec::new();
        if let Some((endpoint, spec)) = ckpt {
            let fp = config_fingerprint(&self.config, "outofcore");
            let s = if spec.resume {
                CheckpointStore::open_or_create(endpoint, &spec.dir, fp)?
            } else {
                CheckpointStore::create(endpoint, &spec.dir, fp)?
            };
            let ranges: Vec<(usize, usize)> = decomp
                .tasks()
                .iter()
                .map(|t| (t.z_begin, t.z_begin + t.nz()))
                .collect();
            done = resume_partition(&ranges, &s.manifest().committed_ranges()).0;
            store = Some(s);
        }

        let mut out = Volume::zeros(g.nx, g.ny, g.nz);
        let mut batches = Vec::with_capacity(decomp.num_subvolumes());
        let mut kernel = KernelStats::default();
        let batches_done = self.registry.counter("ooc.batches");
        let rows_loaded = self.registry.counter("ooc.rows.loaded");
        let kernel_updates = self.registry.counter("ooc.kernel.updates");

        // Whether the previous task's rows went through the normal compute
        // path: only then does the differential `new_rows` load suffice.
        // After a resumed (skipped) task the ring buffer is stale, so the
        // next computed task reloads its full row range — back-projection
        // reads only rows inside `task.rows`, which keeps the output
        // bitwise identical to an uninterrupted run.
        let mut prev_computed = false;
        let mut pending: Vec<(usize, usize, Vec<u8>)> = Vec::new();

        for (i, task) in decomp.tasks().iter().enumerate() {
            let batch_start = std::time::Instant::now();

            if done.contains(&i) {
                let z = (task.z_begin, task.z_begin + task.nz());
                let payload = store.as_ref().unwrap().load_slab(z, None)?;
                out.paste_slab(&slab_from_bytes(g.nx, g.ny, z, &payload)?);
                prev_computed = false;
                batches_done.inc();
                batches.push(OocBatch {
                    index: task.index,
                    ..OocBatch::default()
                });
                continue;
            }

            let r = if prev_computed {
                task.new_rows
            } else {
                task.rows
            };
            let mut h2d_secs = 0.0;
            if !r.is_empty() {
                h2d_secs = self
                    .exec
                    .h2d(Some(window_buf.id()), (r.len() * g.np * g.nu * 4) as u64)?;
                window.write_rows(filtered.rows_block(r.begin, r.end), r.begin, r.end);
            }

            let slab_bytes = (g.nx * g.ny * task.nz() * 4) as u64;
            let slab_buf = self.exec.alloc(slab_bytes)?;
            let mut slab = Volume::zeros_slab(g.nx, g.ny, task.nz(), task.z_begin);
            let stats =
                self.exec
                    .backproject_window(self.config.kernel, &window, &mats, &mut slab)?;
            kernel.merge(&stats);
            kernel_updates.add(stats.updates);
            let bp_secs = self.exec.launch(
                &LaunchDescriptor::backprojection(stats.updates)
                    .with_inputs(vec![mat_buf.id(), window_buf.id()])
                    .with_output(slab_buf.id()),
            )?;
            let d2h_secs = self.exec.d2h(Some(slab_buf.id()), slab_bytes)?;

            for v in slab.data_mut() {
                *v *= scale;
            }
            out.paste_slab(&slab);
            prev_computed = true;

            if let (Some(store), Some((_, spec))) = (store.as_mut(), ckpt) {
                pending.push((task.z_begin, task.z_begin + task.nz(), slab_to_bytes(&slab)));
                if pending.len() >= spec.every {
                    for (z0, z1, payload) in pending.drain(..) {
                        store.save_slab(z0, z1, &payload)?;
                        if let Some(k) = spec.kill_after_saves {
                            if store.saves_this_run() >= k {
                                return Err(ReconstructionError::Interrupted {
                                    completed_slabs: store.saves_this_run(),
                                });
                            }
                        }
                    }
                }
            }

            batches_done.inc();
            rows_loaded.add(r.len() as u64);
            batches.push(OocBatch {
                index: task.index,
                rows_loaded: r.len(),
                h2d_secs,
                bp_secs,
                d2h_secs,
                wall_secs: batch_start.elapsed().as_secs_f64(),
            });
        }

        let report = OutOfCoreReport {
            nb: self.nb,
            window_rows: self.window_rows,
            batches,
            device: self.exec.counters(),
            kernel,
            wall_secs: run_start.elapsed().as_secs_f64(),
            metrics: self.registry.snapshot(),
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdk_reconstruct;
    use scalefbp_geom::CbctGeometry;
    use scalefbp_gpusim::DeviceSpec;
    use scalefbp_phantom::{forward_project, uniform_ball};

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(32, 48, 64, 56)
    }

    fn projections(g: &CbctGeometry) -> ProjectionStack {
        forward_project(g, &uniform_ball(g, 0.55, 1.0))
    }

    fn tiny_device_config(g: &CbctGeometry, budget: u64) -> FdkConfig {
        FdkConfig::new(g.clone()).with_device(DeviceSpec::tiny(budget))
    }

    #[test]
    fn matches_in_core_reconstruction_bitwise() {
        let g = geom();
        let p = projections(&g);
        let reference = fdk_reconstruct(&g, &p).unwrap();
        // A device that can hold only a fraction of the projections.
        let full_bytes = (g.projection_bytes() + g.volume_bytes()) as u64;
        let cfg = tiny_device_config(&g, full_bytes / 3);
        let rec = OutOfCoreReconstructor::new(cfg).unwrap();
        assert!(rec.nb() < g.nz, "expected an actual out-of-core plan");
        let (vol, report) = rec.reconstruct(&p).unwrap();
        assert_eq!(
            vol.data(),
            reference.data(),
            "out-of-core must be bit-identical"
        );
        assert!(report.wall_secs > 0.0);
    }

    #[test]
    fn each_detector_row_moves_to_device_once() {
        let g = geom();
        let p = projections(&g);
        let cfg = tiny_device_config(&g, (g.projection_bytes() + g.volume_bytes()) as u64 / 2);
        let rec = OutOfCoreReconstructor::new(cfg).unwrap();
        let (_, report) = rec.reconstruct(&p).unwrap();
        let rows_total: usize = report.batches.iter().map(|b| b.rows_loaded).sum();
        // Differential loading: bounded by the detector height plus the
        // per-slab guard rows.
        assert!(
            rows_total <= g.nv + 2 * report.batches.len(),
            "rows loaded {rows_total} vs nv {}",
            g.nv
        );
        // H2D bytes match rows exactly.
        assert_eq!(
            report.device.h2d_bytes,
            (rows_total * g.np * g.nu * 4) as u64
        );
    }

    #[test]
    fn report_accounting_is_consistent() {
        let g = geom();
        let p = projections(&g);
        let cfg = tiny_device_config(&g, (g.projection_bytes() + g.volume_bytes()) as u64 / 2);
        let rec = OutOfCoreReconstructor::new(cfg).unwrap();
        let (_, report) = rec.reconstruct(&p).unwrap();
        // Kernel updates = voxels × projections.
        assert_eq!(report.kernel.updates, g.voxel_updates() as u64);
        // D2H carried every slab once.
        assert_eq!(report.device.d2h_bytes, g.volume_bytes() as u64);
        assert!(report.wall_gups() > 0.0);
        assert!(report.simulated_gpu_secs() > 0.0);
        assert_eq!(report.batches.len(), rec.plan().num_subvolumes());
    }

    #[test]
    fn blocked_kernel_streams_bit_identically() {
        let g = geom();
        let p = projections(&g);
        let full_bytes = (g.projection_bytes() + g.volume_bytes()) as u64;
        let base_cfg = tiny_device_config(&g, full_bytes / 3);
        let (baseline, _) = OutOfCoreReconstructor::new(base_cfg.clone())
            .unwrap()
            .reconstruct(&p)
            .unwrap();
        let blocked_cfg = base_cfg.with_kernel(crate::KernelChoice::Blocked);
        let rec = OutOfCoreReconstructor::with_observability(blocked_cfg, MetricsRegistry::new())
            .unwrap();
        assert!(rec.nb() < g.nz, "expected an actual out-of-core plan");
        let (vol, report) = rec.reconstruct(&p).unwrap();
        assert_eq!(vol.data(), baseline.data());
        // The deterministic slab-loop counter mirrors the merged stats.
        assert_eq!(
            report.metrics.counter("ooc.kernel.updates", None),
            Some(report.kernel.updates)
        );
        assert_eq!(report.kernel.updates, g.voxel_updates() as u64);
    }

    #[test]
    fn cpu_backend_streams_bit_identically_with_zero_model_time() {
        let g = geom();
        let p = projections(&g);
        let full_bytes = (g.projection_bytes() + g.volume_bytes()) as u64;
        let cfg = tiny_device_config(&g, full_bytes / 3);
        let sim = OutOfCoreReconstructor::new(cfg.clone()).unwrap();
        let cpu = OutOfCoreReconstructor::new(cfg.with_backend(crate::BackendChoice::Cpu)).unwrap();
        // The plan follows the configured device spec, not the backend.
        assert_eq!(sim.nb(), cpu.nb());
        assert_eq!(sim.window_rows(), cpu.window_rows());
        let (vol_sim, rep_sim) = sim.reconstruct(&p).unwrap();
        let (vol_cpu, rep_cpu) = cpu.reconstruct(&p).unwrap();
        assert_eq!(vol_sim.data(), vol_cpu.data());
        // Byte/call/update counters agree; only modelled time differs.
        assert_eq!(rep_sim.device.h2d_bytes, rep_cpu.device.h2d_bytes);
        assert_eq!(rep_sim.device.d2h_bytes, rep_cpu.device.d2h_bytes);
        assert_eq!(rep_sim.device.kernel_updates, rep_cpu.device.kernel_updates);
        assert_eq!(
            rep_sim.device.kernel_launches,
            rep_cpu.device.kernel_launches
        );
        assert!(rep_sim.simulated_gpu_secs() > 0.0);
        assert_eq!(rep_cpu.simulated_gpu_secs(), 0.0);
    }

    #[test]
    fn device_too_small_is_reported() {
        let g = geom();
        // Too small for even one slice + one row window.
        let cfg = tiny_device_config(&g, 10_000);
        match OutOfCoreReconstructor::new(cfg) {
            Err(ReconstructionError::DeviceTooSmall { needed, capacity }) => {
                assert!(needed > capacity);
            }
            Ok(_) => panic!("expected DeviceTooSmall"),
            Err(e) => panic!("expected DeviceTooSmall, got {e}"),
        }
    }

    #[test]
    fn large_device_uses_paper_batch_count() {
        let g = geom();
        let cfg = FdkConfig::new(g.clone()).with_nc(8);
        let rec = OutOfCoreReconstructor::new(cfg).unwrap();
        assert_eq!(rec.nb(), g.nz.div_ceil(8));
        assert_eq!(rec.plan().num_subvolumes(), 8);
    }

    #[test]
    fn out_of_core_volume_bigger_than_device_memory() {
        // The headline capability: output volume > device capacity
        // (the paper's 256 GB volume on a 16 GB V100, scaled down).
        let g = CbctGeometry::ideal(64, 32, 48, 40);
        let p = projections(&g);
        let vol_bytes = g.volume_bytes() as u64;
        let budget = g.projection_bytes() as u64 + vol_bytes / 4;
        assert!(
            budget < vol_bytes,
            "test setup: device must be smaller than the output"
        );
        let rec = OutOfCoreReconstructor::new(tiny_device_config(&g, budget)).unwrap();
        let (vol, report) = rec.reconstruct(&p).unwrap();
        assert_eq!(vol.len() * 4, vol_bytes as usize);
        assert!(report.device.peak_allocated <= budget);
        assert!(report.device.peak_allocated < vol_bytes);
    }

    #[test]
    fn serial_trace_and_metrics_are_deterministic() {
        let g = geom();
        let p = projections(&g);
        let cfg = tiny_device_config(&g, (g.projection_bytes() + g.volume_bytes()) as u64 / 2);
        let run = || {
            let rec =
                OutOfCoreReconstructor::with_observability(cfg.clone(), MetricsRegistry::new())
                    .unwrap();
            let (_, report) = rec.reconstruct(&p).unwrap();
            (report.serial_trace().to_chrome_trace(), report.metrics)
        };
        let (trace_a, metrics_a) = run();
        let (trace_b, metrics_b) = run();
        assert_eq!(trace_a, trace_b);
        assert_eq!(metrics_a.to_json(), metrics_b.to_json());
        scalefbp_obs::validate_chrome_trace(&trace_a).unwrap();
        let batches = metrics_a.counter("ooc.batches", None).unwrap();
        assert!(batches > 1, "expected an actual out-of-core plan");
        assert_eq!(
            metrics_a.counter("gpu.h2d.bytes", Some(0)),
            metrics_a
                .counter("ooc.rows.loaded", None)
                .map(|rows| rows * (g.np * g.nu * 4) as u64)
        );
    }

    fn ckpt_endpoint(tag: &str) -> StorageEndpoint {
        let d =
            std::env::temp_dir().join(format!("scalefbp-ooc-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        StorageEndpoint::local_nvme(Some(d))
    }

    #[test]
    fn checkpointed_run_without_kill_matches_plain_run() {
        let g = geom();
        let p = projections(&g);
        let cfg = tiny_device_config(&g, (g.projection_bytes() + g.volume_bytes()) as u64 / 3);
        let rec = OutOfCoreReconstructor::new(cfg.clone()).unwrap();
        let (plain, _) = rec.reconstruct(&p).unwrap();
        let ep = ckpt_endpoint("clean");
        let spec = CheckpointSpec::new("ck", 1);
        let (vol, _) = rec.reconstruct_checkpointed(&p, &ep, &spec).unwrap();
        assert_eq!(vol.data(), plain.data());
        let snap = ep.metrics_registry().snapshot();
        assert!(
            snap.counter("ckpt.saves", None).unwrap() >= rec.plan().num_subvolumes() as u64 - 1
        );
    }

    #[test]
    fn killed_run_resumes_bitwise_identical() {
        let g = geom();
        let p = projections(&g);
        let cfg = tiny_device_config(&g, (g.projection_bytes() + g.volume_bytes()) as u64 / 3);
        let rec = OutOfCoreReconstructor::new(cfg).unwrap();
        let n_tasks = rec.plan().num_subvolumes();
        assert!(n_tasks >= 3, "need a few slabs to kill mid-run");
        let (golden, _) = rec.reconstruct(&p).unwrap();

        for kill_after in [1, n_tasks / 2, n_tasks - 1] {
            let ep = ckpt_endpoint(&format!("kill{kill_after}"));
            let spec = CheckpointSpec::new("ck", 1).killing_after(kill_after);
            match rec.reconstruct_checkpointed(&p, &ep, &spec) {
                Err(ReconstructionError::Interrupted { completed_slabs }) => {
                    assert_eq!(completed_slabs, kill_after)
                }
                other => panic!("kill switch did not fire: {:?}", other.map(|_| ())),
            }
            let resume = CheckpointSpec::new("ck", 1).resuming();
            let (vol, report) = rec.reconstruct_checkpointed(&p, &ep, &resume).unwrap();
            assert_eq!(
                vol.data(),
                golden.data(),
                "resume after kill@{kill_after} must be bitwise identical"
            );
            // The resumed run loaded (not recomputed) the committed slabs.
            let resumed: usize = report
                .batches
                .iter()
                .filter(|b| b.rows_loaded == 0 && b.bp_secs == 0.0)
                .count();
            assert_eq!(resumed, kill_after);
            let snap = ep.metrics_registry().snapshot();
            assert_eq!(
                snap.counter("ckpt.resumed.slabs", None),
                Some(kill_after as u64)
            );
        }
    }

    #[test]
    fn resume_with_mismatched_config_is_refused() {
        let g = geom();
        let p = projections(&g);
        let cfg = tiny_device_config(&g, (g.projection_bytes() + g.volume_bytes()) as u64 / 3);
        let ep = ckpt_endpoint("stale");
        let rec = OutOfCoreReconstructor::new(cfg.clone()).unwrap();
        let spec = CheckpointSpec::new("ck", 1).killing_after(1);
        let _ = rec.reconstruct_checkpointed(&p, &ep, &spec);
        // Same directory, different filter configuration: must refuse.
        let other =
            OutOfCoreReconstructor::new(cfg.with_filter(crate::FilterChoice::Fused)).unwrap();
        match other.reconstruct_checkpointed(&p, &ep, &CheckpointSpec::new("ck", 1).resuming()) {
            Err(ReconstructionError::Checkpoint(what)) => {
                assert!(what.contains("stale"), "{what}")
            }
            other => panic!("stale checkpoint accepted: {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = geom();
        let bad = ProjectionStack::zeros(g.nv - 1, g.np, g.nu);
        let rec = OutOfCoreReconstructor::new(FdkConfig::new(g)).unwrap();
        assert!(matches!(
            rec.reconstruct(&bad),
            Err(ReconstructionError::ShapeMismatch(_))
        ));
    }
}
