//! MPI rank grouping of Section 4.4.1 (Eq 9–12).
//!
//! `N_ranks = N_r · N_g` ranks are divided into `N_g` groups of `N_r` ranks
//! (one rank per GPU, Eq 11). Each group reconstructs a contiguous slab of
//! `N_s = N_z / N_g` slices (Eq 10) in `N_c = N_s / N_b` batches (Eq 12);
//! the `N_r` ranks of a group split the `N_p` projection dimension and merge
//! their partial sub-volumes with one segmented reduce per batch.

use crate::CbctGeometry;

/// The static rank layout of a distributed reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankLayout {
    /// Ranks per group (`N_r`) — the split factor of the projection axis.
    pub nr: usize,
    /// Number of groups (`N_g`) — the split factor of the volume Z axis.
    pub ng: usize,
    /// Batch count per group (`N_c`), fixed to 8 in the paper's evaluation.
    pub nc: usize,
}

/// What one rank is responsible for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankAssignment {
    /// World rank id.
    pub rank: usize,
    /// Group index `g = rank / N_r`.
    pub group: usize,
    /// Position within the group `r = rank % N_r`.
    pub rank_in_group: usize,
    /// True for the group leader (receives the reduced sub-volumes and
    /// stores them).
    pub is_group_leader: bool,
    /// Global volume slices the group produces: `[z_begin, z_end)`.
    pub z_begin: usize,
    /// End of the group's slice range.
    pub z_end: usize,
    /// Global projections this rank back-projects: `[s_begin, s_end)`.
    pub s_begin: usize,
    /// End of the rank's projection range.
    pub s_end: usize,
    /// Slab thickness `N_b = N_s / N_c` used for this group's batches.
    pub nb: usize,
}

impl RankAssignment {
    /// Slices produced by the group (`N_s`).
    #[inline]
    pub fn ns(&self) -> usize {
        self.z_end - self.z_begin
    }

    /// Projections processed by this rank.
    #[inline]
    pub fn np_local(&self) -> usize {
        self.s_end - self.s_begin
    }
}

/// Splits `total` items into `parts` contiguous chunks as evenly as possible
/// (the first `total % parts` chunks get one extra item). Returns the
/// half-open range of chunk `idx`.
pub(crate) fn even_split(total: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts > 0 && idx < parts);
    let base = total / parts;
    let rem = total % parts;
    let begin = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    (begin, begin + len)
}

impl RankLayout {
    /// Creates a layout; `nc` batches per group (the paper fixes `N_c = 8`).
    pub fn new(nr: usize, ng: usize, nc: usize) -> Self {
        assert!(
            nr > 0 && ng > 0 && nc > 0,
            "layout factors must be positive"
        );
        RankLayout { nr, ng, nc }
    }

    /// Total ranks = total GPUs (Eq 9 and Eq 11).
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.nr * self.ng
    }

    /// Slices per group for a given volume (Eq 10), for group `g`.
    pub fn group_slices(&self, geom: &CbctGeometry, g: usize) -> (usize, usize) {
        even_split(geom.nz, self.ng, g)
    }

    /// The assignment of world rank `rank` for geometry `geom`.
    ///
    /// # Panics
    /// Panics if `rank >= num_ranks()`.
    pub fn assignment(&self, geom: &CbctGeometry, rank: usize) -> RankAssignment {
        assert!(
            rank < self.num_ranks(),
            "rank {rank} out of {}",
            self.num_ranks()
        );
        let group = rank / self.nr;
        let rank_in_group = rank % self.nr;
        let (z_begin, z_end) = self.group_slices(geom, group);
        let (s_begin, s_end) = even_split(geom.np, self.nr, rank_in_group);
        let ns = z_end - z_begin;
        // N_b = N_s / N_c, rounded up so nc batches always cover the slab.
        let nb = ns.div_ceil(self.nc).max(1);
        RankAssignment {
            rank,
            group,
            rank_in_group,
            is_group_leader: rank_in_group == 0,
            z_begin,
            z_end,
            s_begin,
            s_end,
            nb,
        }
    }

    /// All assignments, rank order.
    pub fn assignments(&self, geom: &CbctGeometry) -> Vec<RankAssignment> {
        (0..self.num_ranks())
            .map(|r| self.assignment(geom, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(64, 96, 96, 96)
    }

    #[test]
    fn even_split_covers_and_balances() {
        for total in [0usize, 1, 7, 64, 97] {
            for parts in [1usize, 2, 3, 8] {
                let mut expect = 0;
                for idx in 0..parts {
                    let (b, e) = even_split(total, parts, idx);
                    assert_eq!(b, expect);
                    expect = e;
                    assert!(e - b <= total / parts + 1);
                }
                assert_eq!(expect, total);
            }
        }
    }

    #[test]
    fn ranks_equal_gpus_eq9_eq11() {
        let l = RankLayout::new(4, 8, 8);
        assert_eq!(l.num_ranks(), 32);
    }

    #[test]
    fn groups_partition_volume_slices() {
        let g = geom();
        let l = RankLayout::new(2, 4, 8);
        let mut covered = 0;
        for grp in 0..l.ng {
            let (b, e) = l.group_slices(&g, grp);
            assert_eq!(b, covered);
            covered = e;
        }
        assert_eq!(covered, g.nz);
    }

    #[test]
    fn ranks_in_group_partition_projections() {
        let g = geom();
        let l = RankLayout::new(3, 2, 4);
        for grp in 0..l.ng {
            let mut covered = 0;
            for r in 0..l.nr {
                let a = l.assignment(&g, grp * l.nr + r);
                assert_eq!(a.group, grp);
                assert_eq!(a.rank_in_group, r);
                assert_eq!(a.s_begin, covered);
                covered = a.s_end;
            }
            assert_eq!(covered, g.np);
        }
    }

    #[test]
    fn group_leader_is_rank_zero_of_group() {
        let g = geom();
        let l = RankLayout::new(4, 2, 8);
        for a in l.assignments(&g) {
            assert_eq!(a.is_group_leader, a.rank_in_group == 0);
        }
    }

    #[test]
    fn all_ranks_in_group_share_slice_range() {
        let g = geom();
        let l = RankLayout::new(4, 4, 8);
        let assigns = l.assignments(&g);
        for grp in 0..l.ng {
            let first = &assigns[grp * l.nr];
            for r in 1..l.nr {
                let a = &assigns[grp * l.nr + r];
                assert_eq!((a.z_begin, a.z_end), (first.z_begin, first.z_end));
                assert_eq!(a.nb, first.nb);
            }
        }
    }

    #[test]
    fn eq12_batches_cover_slab() {
        let g = geom();
        let l = RankLayout::new(2, 4, 8);
        let a = l.assignment(&g, 0);
        // nc batches of nb slices cover ns slices.
        assert!(a.nb * l.nc >= a.ns());
        assert!(a.nb * (l.nc - 1) < a.ns());
    }

    #[test]
    fn single_rank_layout_degenerates_gracefully() {
        let g = geom();
        let l = RankLayout::new(1, 1, 8);
        let a = l.assignment(&g, 0);
        assert_eq!((a.z_begin, a.z_end), (0, g.nz));
        assert_eq!((a.s_begin, a.s_end), (0, g.np));
        assert!(a.is_group_leader);
        assert_eq!(a.nb, g.nz / 8);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_rank_panics() {
        let g = geom();
        let _ = RankLayout::new(2, 2, 8).assignment(&g, 4);
    }
}
