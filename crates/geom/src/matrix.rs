//! The general 3×4 projection matrix of Section 4.1.
//!
//! The CBCT geometry is described as a pinhole model: a 3×4 matrix
//! `M_φ = K · E_φ · V` projects a homogeneous voxel index `[i, j, k, 1]` to
//! detector coordinates,
//!
//! ```text
//! z = ⟨M[2], [i,j,k,1]⟩          (perspective depth, mm from the source
//! x = ⟨M[0], [i,j,k,1]⟩ / z       plane; also the 1/z² weight source)
//! y = ⟨M[1], [i,j,k,1]⟩ / z      (detector pixel coordinates, sub-pixel)
//! ```
//!
//! * `V` (4×4) maps voxel indices to world mm, centring the grid on the
//!   rotation axis: `x = Δx·(i − (N_x−1)/2)` etc.
//! * `E_φ` (4×4) rotates the object by `φ` about the Z axis (implemented as
//!   rotating world points by `−φ`), applies the rotation-centre offset
//!   `σ_cor`, translates the source to distance `D_so`, and maps world Z onto
//!   the (downward) detector V axis.
//! * `K` (3×4) applies the pinhole intrinsics: focal lengths `D_sd/Δu`,
//!   `D_sd/Δv` and the detector centre `( (N_u−1)/2 + σ_u, (N_v−1)/2 + σ_v )`.
//!
//! The rotation sense is chosen so that the corner voxel `(0, 0)` makes its
//! nearest/farthest approach to the source at `φ = 315°` / `φ = 135°`, which
//! is the convention Algorithm 2 (`ComputeAB`) relies on (Figure 5).

use crate::{projection_angle, CbctGeometry};

/// A homogeneous 4-vector.
pub type Vec4 = [f64; 4];

/// Row-major 3×4 matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat3x4(pub [Vec4; 3]);

/// Row-major 4×4 matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4x4(pub [Vec4; 4]);

#[inline]
fn dot4(a: &Vec4, b: &Vec4) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3]
}

impl Mat4x4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4x4 = Mat4x4([
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0],
        [0.0, 0.0, 1.0, 0.0],
        [0.0, 0.0, 0.0, 1.0],
    ]);

    /// Column `c` as a [`Vec4`].
    #[inline]
    pub fn col(&self, c: usize) -> Vec4 {
        [self.0[0][c], self.0[1][c], self.0[2][c], self.0[3][c]]
    }

    /// 4×4 · 4×4 product.
    pub fn mul(&self, rhs: &Mat4x4) -> Mat4x4 {
        let mut out = [[0.0; 4]; 4];
        for (r, row) in self.0.iter().enumerate() {
            for (c, o) in out[r].iter_mut().enumerate() {
                *o = dot4(row, &rhs.col(c));
            }
        }
        Mat4x4(out)
    }

    /// Matrix-vector product.
    pub fn apply(&self, v: &Vec4) -> Vec4 {
        [
            dot4(&self.0[0], v),
            dot4(&self.0[1], v),
            dot4(&self.0[2], v),
            dot4(&self.0[3], v),
        ]
    }
}

impl Mat3x4 {
    /// 3×4 · 4×4 product.
    pub fn mul4(&self, rhs: &Mat4x4) -> Mat3x4 {
        let mut out = [[0.0; 4]; 3];
        for (r, row) in self.0.iter().enumerate() {
            for (c, o) in out[r].iter_mut().enumerate() {
                *o = dot4(row, &rhs.col(c));
            }
        }
        Mat3x4(out)
    }

    /// Matrix-vector product with a homogeneous 4-vector, yielding the
    /// un-normalised `[xh, yh, z]`.
    #[inline]
    pub fn apply(&self, v: &Vec4) -> [f64; 3] {
        [
            dot4(&self.0[0], v),
            dot4(&self.0[1], v),
            dot4(&self.0[2], v),
        ]
    }
}

/// The projection matrix `M_φ` at one scan angle, with cached f32 rows for
/// the back-projection kernel (the CUDA kernel reads `float4` rows).
#[derive(Clone, Debug)]
pub struct ProjectionMatrix {
    /// Scan angle `φ` in radians.
    pub phi: f64,
    /// Double-precision rows (used when constructing decompositions, where
    /// a conservative row range must not suffer from f32 rounding).
    pub m: Mat3x4,
    /// Single-precision rows, the exact operands the kernel dots against
    /// `[i, j, k, 1]` — matching the paper's all-f32 GPU pipeline.
    pub rows_f32: [[f32; 4]; 3],
}

impl ProjectionMatrix {
    /// Builds `M_φ = K · E_φ · V` for geometry `geom` at angle `phi` (radians).
    pub fn new(geom: &CbctGeometry, phi: f64) -> Self {
        let (s, c) = phi.sin_cos();

        // Voxel index -> world mm.
        let v = Mat4x4([
            [geom.dx, 0.0, 0.0, -0.5 * (geom.nx as f64 - 1.0) * geom.dx],
            [0.0, geom.dy, 0.0, -0.5 * (geom.ny as f64 - 1.0) * geom.dy],
            [0.0, 0.0, geom.dz, -0.5 * (geom.nz as f64 - 1.0) * geom.dz],
            [0.0, 0.0, 0.0, 1.0],
        ]);

        // World mm -> camera frame: rotate object by +phi (world by -phi),
        // offset the rotation centre, translate the source to Dso, map world
        // Z to the detector's downward V axis.
        let e = Mat4x4([
            [c, s, 0.0, geom.sigma_cor],
            [0.0, 0.0, -1.0, 0.0],
            [-s, c, 0.0, geom.dso],
            [0.0, 0.0, 0.0, 1.0],
        ]);

        // Camera frame -> detector pixels.
        let k = Mat3x4([
            [
                geom.dsd / geom.du,
                0.0,
                0.5 * (geom.nu as f64 - 1.0) + geom.sigma_u,
                0.0,
            ],
            [
                0.0,
                geom.dsd / geom.dv,
                0.5 * (geom.nv as f64 - 1.0) + geom.sigma_v,
                0.0,
            ],
            [0.0, 0.0, 1.0, 0.0],
        ]);

        let m = k.mul4(&e.mul(&v));
        let mut rows_f32 = [[0.0f32; 4]; 3];
        for (r, row) in m.0.iter().enumerate() {
            for (cidx, &val) in row.iter().enumerate() {
                rows_f32[r][cidx] = val as f32;
            }
        }
        ProjectionMatrix { phi, m, rows_f32 }
    }

    /// Builds the matrix for projection index `s` of a full scan
    /// (`φ = 2π·s/N_p`, the `Mat[s] = M_φ` rule of Algorithm 1).
    pub fn for_index(geom: &CbctGeometry, s: usize) -> Self {
        Self::new(geom, projection_angle(s, geom.np))
    }

    /// Builds the full-scan table of `N_p` matrices.
    pub fn full_scan(geom: &CbctGeometry) -> Vec<ProjectionMatrix> {
        (0..geom.np).map(|s| Self::for_index(geom, s)).collect()
    }

    /// Projects voxel index `(i, j, k)` (Equation 8): returns detector pixel
    /// coordinates `(u, v)` at sub-pixel precision and the depth `z`.
    #[inline]
    pub fn project(&self, i: f64, j: f64, k: f64) -> (f64, f64, f64) {
        let h = self.m.apply(&[i, j, k, 1.0]);
        let z = h[2];
        (h[0] / z, h[1] / z, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(65, 90, 129, 129)
    }

    /// Centre voxel index of an odd grid.
    fn centre(g: &CbctGeometry) -> (f64, f64, f64) {
        (
            (g.nx as f64 - 1.0) / 2.0,
            (g.ny as f64 - 1.0) / 2.0,
            (g.nz as f64 - 1.0) / 2.0,
        )
    }

    #[test]
    fn centre_voxel_projects_to_detector_centre_at_all_angles() {
        let g = geom();
        let (ci, cj, ck) = centre(&g);
        for s in 0..g.np {
            let m = ProjectionMatrix::for_index(&g, s);
            let (u, v, z) = m.project(ci, cj, ck);
            assert!((u - (g.nu as f64 - 1.0) / 2.0).abs() < 1e-9, "s={s} u={u}");
            assert!((v - (g.nv as f64 - 1.0) / 2.0).abs() < 1e-9, "s={s} v={v}");
            assert!((z - g.dso).abs() < 1e-9, "s={s} z={z}");
        }
    }

    #[test]
    fn magnification_matches_dsd_over_dso() {
        let g = geom();
        let (ci, cj, ck) = centre(&g);
        let m = ProjectionMatrix::new(&g, 0.0);
        // A voxel one step along +x at φ=0 is lateral to the optical axis.
        let (u, _, z) = m.project(ci + 1.0, cj, ck);
        let lateral_mm = g.dx; // world displacement
        let detector_mm = (u - (g.nu as f64 - 1.0) / 2.0) * g.du;
        assert!((z - g.dso).abs() < 1e-9);
        assert!(
            (detector_mm - lateral_mm * g.magnification()).abs() < 1e-9,
            "detector {detector_mm} vs {}",
            lateral_mm * g.magnification()
        );
    }

    #[test]
    fn depth_changes_along_optical_axis() {
        let g = geom();
        let (ci, cj, ck) = centre(&g);
        let m = ProjectionMatrix::new(&g, 0.0);
        // At φ=0 the optical axis is world +y with rotation by -φ identity:
        // moving along +j changes depth by ±dy.
        let (_, _, z0) = m.project(ci, cj, ck);
        let (_, _, z1) = m.project(ci, cj + 1.0, ck);
        assert!(((z1 - z0).abs() - g.dy).abs() < 1e-9);
    }

    #[test]
    fn z_axis_maps_to_detector_v() {
        let g = geom();
        let (ci, cj, ck) = centre(&g);
        let m = ProjectionMatrix::new(&g, 0.3);
        let (_, v0, _) = m.project(ci, cj, ck);
        let (_, v1, _) = m.project(ci, cj, ck + 1.0);
        // World +z maps to decreasing v (downward detector axis), scaled by
        // the magnification and pitch ratio.
        let expected = g.dz * g.magnification() / g.dv;
        assert!((v0 - v1 - expected).abs() < 1e-9, "v0={v0} v1={v1}");
    }

    #[test]
    fn detector_offsets_shift_projection() {
        let mut g = geom();
        let (ci, cj, ck) = centre(&g);
        g.sigma_u = 3.5;
        g.sigma_v = -2.25;
        let m = ProjectionMatrix::new(&g, 1.1);
        let (u, v, _) = m.project(ci, cj, ck);
        assert!((u - ((g.nu as f64 - 1.0) / 2.0 + 3.5)).abs() < 1e-9);
        assert!((v - ((g.nv as f64 - 1.0) / 2.0 - 2.25)).abs() < 1e-9);
    }

    #[test]
    fn rotation_centre_offset_shifts_u_only() {
        let mut g = geom();
        let (ci, cj, ck) = centre(&g);
        g.sigma_cor = 0.7;
        let m = ProjectionMatrix::new(&g, 0.0);
        let (u, v, z) = m.project(ci, cj, ck);
        let expected_u = (g.nu as f64 - 1.0) / 2.0 + 0.7 * g.magnification() / g.du;
        assert!((u - expected_u).abs() < 1e-9);
        assert!((v - (g.nv as f64 - 1.0) / 2.0).abs() < 1e-9);
        assert!((z - g.dso).abs() < 1e-9);
    }

    #[test]
    fn full_rotation_returns_to_start() {
        let g = geom();
        let m0 = ProjectionMatrix::new(&g, 0.0);
        let m1 = ProjectionMatrix::new(&g, 2.0 * std::f64::consts::PI);
        for (a, b) in m0.m.0.iter().flatten().zip(m1.m.0.iter().flatten()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn corner_voxel_nearest_approach_at_315_degrees() {
        // The convention Algorithm 2 depends on (Figure 5): voxel (0,0,·)
        // is nearest to the source at φ=315° and farthest at φ=135°.
        let g = geom();
        let k = (g.nz as f64 - 1.0) / 2.0;
        let depth_at = |deg: f64| {
            let m = ProjectionMatrix::new(&g, deg.to_radians());
            m.project(0.0, 0.0, k).2
        };
        let mut min_phi = 0.0;
        let mut max_phi = 0.0;
        let (mut zmin, mut zmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for step in 0..3600 {
            let deg = step as f64 * 0.1;
            let z = depth_at(deg);
            if z < zmin {
                zmin = z;
                min_phi = deg;
            }
            if z > zmax {
                zmax = z;
                max_phi = deg;
            }
        }
        assert!((min_phi - 315.0).abs() < 0.2, "nearest at {min_phi}°");
        assert!((max_phi - 135.0).abs() < 0.2, "farthest at {max_phi}°");
        assert!((zmin - (g.dso - g.footprint_radius())).abs() < 1e-6);
        assert!((zmax - (g.dso + g.footprint_radius())).abs() < 1e-6);
    }

    #[test]
    fn f32_rows_agree_with_f64_projection() {
        let g = geom();
        let m = ProjectionMatrix::new(&g, 0.77);
        let ijk = [12.0f32, 40.0, 7.0, 1.0];
        let dot = |row: &[f32; 4]| -> f32 {
            row[0] * ijk[0] + row[1] * ijk[1] + row[2] * ijk[2] + row[3] * ijk[3]
        };
        let z32 = dot(&m.rows_f32[2]);
        let u32 = dot(&m.rows_f32[0]) / z32;
        let v32 = dot(&m.rows_f32[1]) / z32;
        let (u, v, z) = m.project(12.0, 40.0, 7.0);
        assert!((u - u32 as f64).abs() < 1e-3);
        assert!((v - v32 as f64).abs() < 1e-3);
        assert!((z - z32 as f64).abs() < 1e-3);
    }

    #[test]
    fn mat4_identity_is_neutral() {
        let g = geom();
        let m = ProjectionMatrix::new(&g, 0.4).m;
        let prod = m.mul4(&Mat4x4::IDENTITY);
        for (a, b) in m.0.iter().flatten().zip(prod.0.iter().flatten()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn mat4_mul_associates_with_apply() {
        let a = Mat4x4([
            [1.0, 2.0, 0.0, -1.0],
            [0.5, -1.0, 3.0, 0.0],
            [2.0, 0.0, 1.0, 1.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let b = Mat4x4([
            [0.0, 1.0, 0.0, 2.0],
            [1.0, 0.0, -1.0, 0.0],
            [0.0, 2.0, 1.0, -3.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let v = [1.0, -2.0, 3.0, 1.0];
        let lhs = a.mul(&b).apply(&v);
        let rhs = a.apply(&b.apply(&v));
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
