//! Detector-row-major projection stack: the input container of Figure 3a.

/// A stack of `N_p` projections stored detector-row major: `[v][s][u]`.
///
/// This is the input layout of Figure 3a (`N_v × N_p × N_u`). Storing the
/// detector row `v` as the outermost dimension means the row range
/// `[a_i, b_i)` needed by sub-volume `V_i` is **one contiguous block across
/// all projections**, which is what makes the paper's 2-D input
/// decomposition (split along `N_v` *and* `N_p`) a pair of cheap slicing
/// operations instead of a gather.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjectionStack {
    nv: usize,
    np: usize,
    nu: usize,
    /// First global detector row held by this (possibly partial) stack.
    v_offset: usize,
    /// First global projection index held by this (possibly partial) stack.
    s_offset: usize,
    data: Vec<f32>,
}

impl ProjectionStack {
    /// Allocates a zero-filled full stack.
    pub fn zeros(nv: usize, np: usize, nu: usize) -> Self {
        ProjectionStack {
            nv,
            np,
            nu,
            v_offset: 0,
            s_offset: 0,
            data: vec![0.0; nv * np * nu],
        }
    }

    /// Allocates a zero-filled partial stack covering global detector rows
    /// `[v_offset, v_offset+nv)` and projections `[s_offset, s_offset+np)`.
    pub fn zeros_window(nv: usize, np: usize, nu: usize, v_offset: usize, s_offset: usize) -> Self {
        ProjectionStack {
            v_offset,
            s_offset,
            ..ProjectionStack::zeros(nv, np, nu)
        }
    }

    /// Wraps existing data (length must be `nv·np·nu`).
    pub fn from_data(nv: usize, np: usize, nu: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), nv * np * nu, "projection data length mismatch");
        ProjectionStack {
            nv,
            np,
            nu,
            v_offset: 0,
            s_offset: 0,
            data,
        }
    }

    /// Number of detector rows held.
    #[inline]
    pub fn nv(&self) -> usize {
        self.nv
    }
    /// Number of projections held.
    #[inline]
    pub fn np(&self) -> usize {
        self.np
    }
    /// Detector row width in pixels.
    #[inline]
    pub fn nu(&self) -> usize {
        self.nu
    }
    /// Global detector row of local row 0.
    #[inline]
    pub fn v_offset(&self) -> usize {
        self.v_offset
    }
    /// Global projection index of local projection 0.
    #[inline]
    pub fn s_offset(&self) -> usize {
        self.s_offset
    }
    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// True if no pixels are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of local `(v, s, u)`.
    #[inline]
    pub fn index(&self, v: usize, s: usize, u: usize) -> usize {
        debug_assert!(v < self.nv && s < self.np && u < self.nu);
        (v * self.np + s) * self.nu + u
    }

    /// Pixel value at local `(v, s, u)`.
    #[inline]
    pub fn get(&self, v: usize, s: usize, u: usize) -> f32 {
        self.data[self.index(v, s, u)]
    }

    /// Mutable pixel reference at local `(v, s, u)`.
    #[inline]
    pub fn get_mut(&mut self, v: usize, s: usize, u: usize) -> &mut f32 {
        let idx = self.index(v, s, u);
        &mut self.data[idx]
    }

    /// The whole pixel buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The whole pixel buffer, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One detector row of one projection, contiguous: local `(v, s)`.
    pub fn row(&self, v: usize, s: usize) -> &[f32] {
        let start = self.index(v, s, 0);
        &self.data[start..start + self.nu]
    }

    /// One detector row of one projection, contiguous and mutable.
    pub fn row_mut(&mut self, v: usize, s: usize) -> &mut [f32] {
        let start = self.index(v, s, 0);
        &mut self.data[start..start + self.nu]
    }

    /// The contiguous block of local detector rows `[v_begin, v_end)` across
    /// all held projections — the unit of the H2D copies in Algorithm 3.
    pub fn rows_block(&self, v_begin: usize, v_end: usize) -> &[f32] {
        assert!(
            v_begin <= v_end && v_end <= self.nv,
            "row block out of range"
        );
        let stride = self.np * self.nu;
        &self.data[v_begin * stride..v_end * stride]
    }

    /// Extracts a copy of **global** detector rows `[v_begin, v_end)` and
    /// **global** projections `[s_begin, s_end)` as a new partial stack.
    ///
    /// The requested window must be contained in this stack. This models one
    /// rank's load of its partial projections (Eq 5 / Eq 7: `N_p` split into
    /// `N_r` parts, rows restricted to `a_i b_i` or `b_i b_{i+1}`).
    pub fn extract_window(
        &self,
        v_begin: usize,
        v_end: usize,
        s_begin: usize,
        s_end: usize,
    ) -> ProjectionStack {
        assert!(
            v_begin >= self.v_offset && v_end <= self.v_offset + self.nv && v_begin <= v_end,
            "detector row window [{v_begin}, {v_end}) outside held [{}, {})",
            self.v_offset,
            self.v_offset + self.nv
        );
        assert!(
            s_begin >= self.s_offset && s_end <= self.s_offset + self.np && s_begin <= s_end,
            "projection window [{s_begin}, {s_end}) outside held [{}, {})",
            self.s_offset,
            self.s_offset + self.np
        );
        let nv = v_end - v_begin;
        let np = s_end - s_begin;
        let mut out = ProjectionStack::zeros_window(nv, np, self.nu, v_begin, s_begin);
        for v in 0..nv {
            for s in 0..np {
                let src = self.row(v_begin - self.v_offset + v, s_begin - self.s_offset + s);
                out.row_mut(v, s).copy_from_slice(src);
            }
        }
        out
    }

    /// Bilinear interpolation at sub-pixel **local** coordinates `(x, y)`
    /// within projection `s` — the `SubPixel` function of Algorithm 1.
    ///
    /// `x` indexes the U axis, `y` the (local) V axis. Samples outside the
    /// held window contribute zero, the standard zero-padded detector
    /// boundary condition. Non-finite coordinates also return zero: a NaN
    /// coordinate would otherwise poison the blend (`0 · NaN = NaN`) even
    /// though every tap individually lands out of bounds, because
    /// `NaN as isize` saturates to 0 — a valid index.
    pub fn sub_pixel(&self, s: usize, x: f32, y: f32) -> f32 {
        if !(x.is_finite() && y.is_finite()) {
            return 0.0;
        }
        let iu = x.floor() as isize;
        let iv = y.floor() as isize;
        let eu = x - iu as f32;
        let ev = y - iv as f32;
        let sample = |v: isize, u: isize| -> f32 {
            if v < 0 || u < 0 || v as usize >= self.nv || u as usize >= self.nu {
                0.0
            } else {
                self.get(v as usize, s, u as usize)
            }
        };
        let t1 = sample(iv, iu) * (1.0 - eu) + sample(iv, iu + 1) * eu;
        let t2 = sample(iv + 1, iu) * (1.0 - eu) + sample(iv + 1, iu + 1) * eu;
        t1 * (1.0 - ev) + t2 * ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_stack(nv: usize, np: usize, nu: usize) -> ProjectionStack {
        let mut p = ProjectionStack::zeros(nv, np, nu);
        for v in 0..nv {
            for s in 0..np {
                for u in 0..nu {
                    *p.get_mut(v, s, u) = (v * 100 + s * 10 + u) as f32;
                }
            }
        }
        p
    }

    #[test]
    fn layout_is_v_major() {
        let p = counting_stack(2, 3, 4);
        assert_eq!(p.index(0, 0, 0), 0);
        assert_eq!(p.index(0, 0, 3), 3);
        assert_eq!(p.index(0, 1, 0), 4);
        assert_eq!(p.index(1, 0, 0), 12);
    }

    #[test]
    fn rows_block_is_contiguous_v_range() {
        let p = counting_stack(4, 2, 3);
        let block = p.rows_block(1, 3);
        assert_eq!(block.len(), 2 * 2 * 3);
        assert_eq!(block[0], p.get(1, 0, 0));
        assert_eq!(block[block.len() - 1], p.get(2, 1, 2));
    }

    #[test]
    fn extract_window_preserves_values_and_offsets() {
        let p = counting_stack(6, 4, 3);
        let w = p.extract_window(2, 5, 1, 3);
        assert_eq!(w.nv(), 3);
        assert_eq!(w.np(), 2);
        assert_eq!(w.v_offset(), 2);
        assert_eq!(w.s_offset(), 1);
        for v in 0..3 {
            for s in 0..2 {
                for u in 0..3 {
                    assert_eq!(w.get(v, s, u), p.get(v + 2, s + 1, u));
                }
            }
        }
    }

    #[test]
    fn extract_window_of_window() {
        let p = counting_stack(8, 4, 2);
        let w = p.extract_window(2, 7, 0, 4);
        let inner = w.extract_window(3, 5, 1, 2);
        assert_eq!(inner.v_offset(), 3);
        assert_eq!(inner.get(0, 0, 1), p.get(3, 1, 1));
    }

    #[test]
    #[should_panic(expected = "outside held")]
    fn extract_window_out_of_range_panics() {
        let p = counting_stack(4, 2, 2);
        let _ = p.extract_window(2, 6, 0, 2);
    }

    #[test]
    fn sub_pixel_interpolates_bilinearly() {
        let mut p = ProjectionStack::zeros(2, 1, 2);
        *p.get_mut(0, 0, 0) = 1.0;
        *p.get_mut(0, 0, 1) = 2.0;
        *p.get_mut(1, 0, 0) = 3.0;
        *p.get_mut(1, 0, 1) = 4.0;
        assert!((p.sub_pixel(0, 0.0, 0.0) - 1.0).abs() < 1e-6);
        assert!((p.sub_pixel(0, 1.0, 1.0) - 4.0).abs() < 1e-6);
        assert!((p.sub_pixel(0, 0.5, 0.0) - 1.5).abs() < 1e-6);
        assert!((p.sub_pixel(0, 0.0, 0.5) - 2.0).abs() < 1e-6);
        assert!((p.sub_pixel(0, 0.5, 0.5) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn sub_pixel_outside_is_zero_padded() {
        let mut p = ProjectionStack::zeros(2, 1, 2);
        p.data_mut().fill(8.0);
        assert_eq!(p.sub_pixel(0, -5.0, 0.0), 0.0);
        assert_eq!(p.sub_pixel(0, 0.0, 10.0), 0.0);
        // Half-in, half-out: edge sample interpolates toward zero.
        assert!((p.sub_pixel(0, -0.5, 0.0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn row_accessors_match_get() {
        let p = counting_stack(3, 2, 5);
        let r = p.row(2, 1);
        for (u, &val) in r.iter().enumerate() {
            assert_eq!(val, p.get(2, 1, u));
        }
    }
}
