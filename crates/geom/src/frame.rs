//! World-space source/detector pose — the forward-model side of the
//! projection matrix.

use crate::{projection_angle, CbctGeometry};

/// World-space pose of the X-ray source point and flat-panel detector at
/// one scan angle — the exact inverse of [`crate::ProjectionMatrix`]
/// (rotating the *object* by `+φ` is implemented by rotating the
/// source/detector assembly by `−φ` around the object).
///
/// Used by everything that casts rays *forward*: the phantom projector
/// and the ray-driven iterative-reconstruction operators.
#[derive(Clone, Copy, Debug)]
pub struct SourceDetectorFrame {
    cu: f64,
    cv: f64,
    du: f64,
    dv: f64,
    sin: f64,
    cos: f64,
    sigma_cor: f64,
    dso: f64,
    dsd: f64,
    /// Source position (mm, world).
    pub source: [f64; 3],
}

impl SourceDetectorFrame {
    /// Builds the frame for geometry `geom` at angle `phi` (radians).
    pub fn new(geom: &CbctGeometry, phi: f64) -> Self {
        let (sin, cos) = phi.sin_cos();
        let cu = 0.5 * (geom.nu as f64 - 1.0) + geom.sigma_u;
        let cv = 0.5 * (geom.nv as f64 - 1.0) + geom.sigma_v;
        // Camera-to-world: [x; y] = [[c, -s], [s, c]]·[camx − σcor; camz − Dso],
        // z = −camy. The source is the camera origin.
        let source = [
            cos * (-geom.sigma_cor) - sin * (-geom.dso),
            sin * (-geom.sigma_cor) + cos * (-geom.dso),
            0.0,
        ];
        SourceDetectorFrame {
            cu,
            cv,
            du: geom.du,
            dv: geom.dv,
            sin,
            cos,
            sigma_cor: geom.sigma_cor,
            dso: geom.dso,
            dsd: geom.dsd,
            source,
        }
    }

    /// Builds the frame for full-scan projection index `s`.
    pub fn for_index(geom: &CbctGeometry, s: usize) -> Self {
        Self::new(geom, projection_angle(s, geom.np))
    }

    /// World position (mm) of detector pixel `(u, v)` (sub-pixel allowed).
    pub fn pixel_position(&self, u: f64, v: f64) -> [f64; 3] {
        let cam_x = (u - self.cu) * self.du;
        let cam_y = (v - self.cv) * self.dv;
        let cam_z = self.dsd;
        [
            self.cos * (cam_x - self.sigma_cor) - self.sin * (cam_z - self.dso),
            self.sin * (cam_x - self.sigma_cor) + self.cos * (cam_z - self.dso),
            -cam_y,
        ]
    }

    /// Unit direction from the source through detector pixel `(u, v)`, and
    /// the source→pixel distance (mm).
    pub fn pixel_direction(&self, u: f64, v: f64) -> ([f64; 3], f64) {
        let p = self.pixel_position(u, v);
        let d = [
            p[0] - self.source[0],
            p[1] - self.source[1],
            p[2] - self.source[2],
        ];
        let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        ([d[0] / len, d[1] / len, d[2] / len], len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProjectionMatrix;

    fn geom() -> CbctGeometry {
        let mut g = CbctGeometry::ideal(33, 24, 48, 40);
        g.sigma_u = 2.0;
        g.sigma_v = -1.5;
        g.sigma_cor = 0.3;
        g
    }

    #[test]
    fn frame_is_inverse_of_projection_matrix() {
        // A voxel projected to (u, v) by the 3×4 matrix must lie on the
        // ray through detector pixel (u, v).
        let g = geom();
        for s in [0, 3, 7, 13, 23] {
            let m = ProjectionMatrix::for_index(&g, s);
            let frame = SourceDetectorFrame::for_index(&g, s);
            for (i, j, k) in [(4.0, 8.0, 2.0), (16.0, 16.0, 16.0), (30.0, 5.0, 28.0)] {
                let (u, v, depth) = m.project(i, j, k);
                let (dir, _) = frame.pixel_direction(u, v);
                let w = [
                    g.voxel_x(i as usize),
                    g.voxel_y(j as usize),
                    g.voxel_z(k as usize),
                ];
                let d = [
                    w[0] - frame.source[0],
                    w[1] - frame.source[1],
                    w[2] - frame.source[2],
                ];
                let t = d[0] * dir[0] + d[1] * dir[1] + d[2] * dir[2];
                let dist = ((d[0] - t * dir[0]).powi(2)
                    + (d[1] - t * dir[1]).powi(2)
                    + (d[2] - t * dir[2]).powi(2))
                .sqrt();
                assert!(dist < 1e-9, "s={s} voxel=({i},{j},{k}) off-ray by {dist}");
                assert!(depth > 0.0);
            }
        }
    }

    #[test]
    fn source_is_at_dso_from_axis() {
        let g = geom();
        for s in 0..g.np {
            let f = SourceDetectorFrame::for_index(&g, s);
            let r = (f.source[0] * f.source[0] + f.source[1] * f.source[1]).sqrt();
            // σ_cor shifts the source slightly off the Dso circle.
            let expect = (g.dso * g.dso + g.sigma_cor * g.sigma_cor).sqrt();
            assert!((r - expect).abs() < 1e-9);
            assert_eq!(f.source[2], 0.0);
        }
    }

    #[test]
    fn detector_centre_is_dsd_from_source() {
        let g = geom();
        let f = SourceDetectorFrame::new(&g, 0.7);
        let cu = 0.5 * (g.nu as f64 - 1.0) + g.sigma_u;
        let cv = 0.5 * (g.nv as f64 - 1.0) + g.sigma_v;
        let c = f.pixel_position(cu, cv);
        let d = ((c[0] - f.source[0]).powi(2)
            + (c[1] - f.source[1]).powi(2)
            + (c[2] - f.source[2]).powi(2))
        .sqrt();
        assert!((d - g.dsd).abs() < 1e-9);
    }

    #[test]
    fn pixel_direction_is_unit_and_points_at_pixel() {
        let g = geom();
        let f = SourceDetectorFrame::new(&g, 1.2);
        let (dir, len) = f.pixel_direction(10.0, 20.0);
        let norm = (dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2]).sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        let p = f.pixel_position(10.0, 20.0);
        for a in 0..3 {
            assert!((f.source[a] + len * dir[a] - p[a]).abs() < 1e-9);
        }
    }
}
