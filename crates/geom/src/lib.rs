//! Cone-beam CT geometry and the SC'21 decomposition mathematics.
//!
//! This crate is the foundation of the scalefbp workspace. It provides:
//!
//! * [`CbctGeometry`] — every parameter of Table 1 of the paper (source and
//!   detector distances, detector/voxel grids and pitches, the geometric
//!   correction offsets `σu`, `σv`, `σcor` of Figure 7).
//! * [`ProjectionMatrix`] — the general 3×4 projection matrix of Section 4.1,
//!   `M_φ = K · E_φ · V`, mapping voxel indices to detector pixel coordinates
//!   at sub-pixel precision, together with the perspective depth `z` used as
//!   the `1/z²` back-projection weight.
//! * [`compute_ab`] — Algorithm 2: the maximum detector-row range `a_i b_i`
//!   required to reconstruct a slab of slices, evaluated from the projection
//!   of the corner voxel at 135° and 315° (Figure 5).
//! * [`VolumeDecomposition`] — the paper's core contribution in data form:
//!   the `N_n = N_z / N_b` sub-volume slabs (Eq 3), each slab's detector-row
//!   range (Eq 4), the overlapped regions (Figure 4) and the *differential*
//!   ranges `b_i b_{i+1}` that must be newly loaded when advancing to the
//!   next slab (Eq 6–7).
//! * [`RankLayout`] — the MPI rank grouping of Section 4.4.1 (Eq 9–12):
//!   `N_ranks = N_r · N_g` ranks, groups of `N_r` ranks that split the `N_p`
//!   projection dimension, each group producing `N_s = N_z / N_g` slices in
//!   `N_c` batches.
//! * [`Volume`] / [`ProjectionStack`] — the dense containers with the layouts
//!   the paper uses: volume `[z][y][x]`, projections `[v][s][u]` (detector-row
//!   major, so a row range is one contiguous block across all projections —
//!   the property that makes the 2-D input split cheap).
//! * [`datasets`] — presets for the six real-world datasets of Section 6.1 /
//!   Table 4, plus scaled-down variants for laptop-sized runs.

mod datasets;
mod decomp;
mod frame;
mod grouping;
mod matrix;
mod params;
mod projection;
mod volume;

pub use datasets::{DatasetPreset, DATASET_PRESETS};
pub use decomp::{
    compute_ab, compute_ab_conservative, RowRange, SubVolumeTask, VolumeDecomposition,
};
pub use frame::SourceDetectorFrame;
pub use grouping::{RankAssignment, RankLayout};
pub use matrix::{Mat3x4, Mat4x4, ProjectionMatrix, Vec4};
pub use params::{CbctGeometry, GeometryError};
pub use projection::ProjectionStack;
pub use volume::Volume;

/// Full-scan angle (radians) of projection `s` out of `np`: `φ = 2π·s/N_p`.
#[inline]
pub fn projection_angle(s: usize, np: usize) -> f64 {
    2.0 * std::f64::consts::PI * s as f64 / np as f64
}
