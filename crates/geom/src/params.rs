//! The CBCT system parameters of Table 1, with validation.

use serde::{Deserialize, Serialize};

/// Errors produced when validating a [`CbctGeometry`].
#[derive(Clone, Debug, PartialEq)]
pub enum GeometryError {
    /// A dimension (detector or volume grid, projection count) is zero.
    ZeroDimension(&'static str),
    /// A physical length (distance or pitch) is not strictly positive.
    NonPositiveLength(&'static str),
    /// The detector must sit beyond the rotation axis: `Dsd > Dso`.
    DetectorBehindObject { dso: f64, dsd: f64 },
    /// The reconstructed cylinder must fit between source and rotation axis,
    /// otherwise rays pass through the source (depth `z ≤ 0`).
    ObjectReachesSource { dso: f64, radius: f64 },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::ZeroDimension(name) => write!(f, "dimension `{name}` must be nonzero"),
            GeometryError::NonPositiveLength(name) => {
                write!(f, "length `{name}` must be strictly positive")
            }
            GeometryError::DetectorBehindObject { dso, dsd } => write!(
                f,
                "detector distance Dsd={dsd} must exceed source-object distance Dso={dso}"
            ),
            GeometryError::ObjectReachesSource { dso, radius } => write!(
                f,
                "volume footprint radius {radius} reaches the X-ray source (Dso={dso})"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// The full parameter set of a cone-beam CT system (Table 1 of the paper).
///
/// Distances and pitches are in millimetres; detector sizes in pixels; volume
/// sizes in voxels. The offsets `sigma_u`/`sigma_v` (detector centre offset in
/// pixels, Figure 7a) and `sigma_cor` (rotation-centre offset in mm, Figure
/// 7b) implement the dynamic geometric correction of Section 4.1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CbctGeometry {
    /// Distance from source to rotation axis (`D_so`, mm).
    pub dso: f64,
    /// Distance from source to flat-panel detector (`D_sd`, mm).
    pub dsd: f64,
    /// Number of 2-D projections over the full 360° scan (`N_p`).
    pub np: usize,
    /// Detector width in pixels (`N_u`).
    pub nu: usize,
    /// Detector height in pixels (`N_v`).
    pub nv: usize,
    /// Detector pixel pitch along U (mm/pixel, `Δ_u`).
    pub du: f64,
    /// Detector pixel pitch along V (mm/pixel, `Δ_v`).
    pub dv: f64,
    /// Volume size in voxels along X (`N_x`).
    pub nx: usize,
    /// Volume size in voxels along Y (`N_y`).
    pub ny: usize,
    /// Volume size in voxels along Z (`N_z`).
    pub nz: usize,
    /// Voxel pitch along X (mm/voxel, `Δ_x`).
    pub dx: f64,
    /// Voxel pitch along Y (mm/voxel, `Δ_y`).
    pub dy: f64,
    /// Voxel pitch along Z (mm/voxel, `Δ_z`).
    pub dz: f64,
    /// Detector centre offset along U (pixels, `σ_u`).
    pub sigma_u: f64,
    /// Detector centre offset along V (pixels, `σ_v`).
    pub sigma_v: f64,
    /// Rotation centre offset (mm, `σ_cor`).
    pub sigma_cor: f64,
}

impl CbctGeometry {
    /// A convenient ideal geometry (no correction offsets) with a cubic
    /// `n³` volume whose footprint fills the detector fan.
    ///
    /// The voxel pitch is chosen so the volume's inscribed cylinder projects
    /// inside the detector at magnification `Dsd/Dso`.
    pub fn ideal(n: usize, np: usize, nu: usize, nv: usize) -> Self {
        let dso = 100.0;
        let dsd = 250.0;
        let du = 1.0;
        let dv = 1.0;
        // Detector half-width in mm, demagnified to the rotation axis, with a
        // √2 safety margin so the square footprint's corners stay in the fan.
        let half_fov = 0.5 * nu as f64 * du * dso / dsd;
        let dx = 2.0 * half_fov / (n as f64 * std::f64::consts::SQRT_2);
        CbctGeometry {
            dso,
            dsd,
            np,
            nu,
            nv,
            du,
            dv,
            nx: n,
            ny: n,
            nz: n,
            dx,
            dy: dx,
            dz: dx,
            sigma_u: 0.0,
            sigma_v: 0.0,
            sigma_cor: 0.0,
        }
    }

    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), GeometryError> {
        for (v, name) in [
            (self.np, "np"),
            (self.nu, "nu"),
            (self.nv, "nv"),
            (self.nx, "nx"),
            (self.ny, "ny"),
            (self.nz, "nz"),
        ] {
            if v == 0 {
                return Err(GeometryError::ZeroDimension(name));
            }
        }
        for (v, name) in [
            (self.dso, "dso"),
            (self.dsd, "dsd"),
            (self.du, "du"),
            (self.dv, "dv"),
            (self.dx, "dx"),
            (self.dy, "dy"),
            (self.dz, "dz"),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(GeometryError::NonPositiveLength(name));
            }
        }
        if self.dsd <= self.dso {
            return Err(GeometryError::DetectorBehindObject {
                dso: self.dso,
                dsd: self.dsd,
            });
        }
        let radius = self.footprint_radius();
        if radius >= self.dso {
            return Err(GeometryError::ObjectReachesSource {
                dso: self.dso,
                radius,
            });
        }
        Ok(())
    }

    /// The X-ray magnification factor `D_sd / D_so` (Section 2.2.2). For the
    /// coffee-bean dataset this is 9.48.
    #[inline]
    pub fn magnification(&self) -> f64 {
        self.dsd / self.dso
    }

    /// Radius (mm) of the volume's horizontal footprint: the distance from
    /// the rotation axis to the corner voxel *centre* of a slice.
    pub fn footprint_radius(&self) -> f64 {
        let cx = 0.5 * (self.nx.saturating_sub(1)) as f64 * self.dx;
        let cy = 0.5 * (self.ny.saturating_sub(1)) as f64 * self.dy;
        (cx * cx + cy * cy).sqrt()
    }

    /// Number of elements (f32) in the full projection stack `N_v·N_p·N_u`.
    #[inline]
    pub fn projection_elements(&self) -> usize {
        self.nv * self.np * self.nu
    }

    /// Number of voxels in the output volume `N_x·N_y·N_z`.
    #[inline]
    pub fn volume_voxels(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Bytes of the f32 projection stack.
    #[inline]
    pub fn projection_bytes(&self) -> usize {
        self.projection_elements() * std::mem::size_of::<f32>()
    }

    /// Bytes of the f32 output volume.
    #[inline]
    pub fn volume_bytes(&self) -> usize {
        self.volume_voxels() * std::mem::size_of::<f32>()
    }

    /// Total voxel *updates* performed by a full back-projection:
    /// `N_x·N_y·N_z·N_p`. The paper's GUPS metric divides this by runtime.
    #[inline]
    pub fn voxel_updates(&self) -> u128 {
        self.volume_voxels() as u128 * self.np as u128
    }

    /// World-space x coordinate (mm) of voxel index `i`:
    /// `Δx·(i − (N_x−1)/2)`.
    #[inline]
    pub fn voxel_x(&self, i: usize) -> f64 {
        self.dx * (i as f64 - 0.5 * (self.nx as f64 - 1.0))
    }

    /// World-space y coordinate (mm) of voxel index `j`.
    #[inline]
    pub fn voxel_y(&self, j: usize) -> f64 {
        self.dy * (j as f64 - 0.5 * (self.ny as f64 - 1.0))
    }

    /// World-space z coordinate (mm) of voxel index `k`.
    #[inline]
    pub fn voxel_z(&self, k: usize) -> f64 {
        self.dz * (k as f64 - 0.5 * (self.nz as f64 - 1.0))
    }

    /// Returns a copy with a different output volume grid (common when the
    /// same scan is reconstructed at several resolutions, as in Table 5).
    pub fn with_volume(&self, nx: usize, ny: usize, nz: usize) -> Self {
        let mut g = self.clone();
        // Keep the physical field of view: rescale pitches by the grid ratio.
        g.dx = self.dx * self.nx as f64 / nx as f64;
        g.dy = self.dy * self.ny as f64 / ny as f64;
        g.dz = self.dz * self.nz as f64 / nz as f64;
        g.nx = nx;
        g.ny = ny;
        g.nz = nz;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_geometry_validates() {
        let g = CbctGeometry::ideal(64, 120, 96, 96);
        g.validate().unwrap();
        assert!(g.magnification() > 1.0);
    }

    #[test]
    fn magnification_matches_ratio() {
        let g = CbctGeometry::ideal(32, 60, 48, 48);
        assert!((g.magnification() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut g = CbctGeometry::ideal(16, 30, 24, 24);
        g.np = 0;
        assert_eq!(g.validate(), Err(GeometryError::ZeroDimension("np")));
    }

    #[test]
    fn non_positive_pitch_rejected() {
        let mut g = CbctGeometry::ideal(16, 30, 24, 24);
        g.du = 0.0;
        assert_eq!(g.validate(), Err(GeometryError::NonPositiveLength("du")));
        g.du = -1.0;
        assert_eq!(g.validate(), Err(GeometryError::NonPositiveLength("du")));
    }

    #[test]
    fn detector_behind_object_rejected() {
        let mut g = CbctGeometry::ideal(16, 30, 24, 24);
        g.dsd = g.dso * 0.5;
        assert!(matches!(
            g.validate(),
            Err(GeometryError::DetectorBehindObject { .. })
        ));
    }

    #[test]
    fn object_reaching_source_rejected() {
        let mut g = CbctGeometry::ideal(16, 30, 24, 24);
        g.dx = 1000.0;
        g.dy = 1000.0;
        assert!(matches!(
            g.validate(),
            Err(GeometryError::ObjectReachesSource { .. })
        ));
    }

    #[test]
    fn voxel_centres_are_symmetric() {
        let g = CbctGeometry::ideal(17, 30, 24, 24);
        // Odd grid: the central voxel sits exactly on the rotation axis.
        assert!(g.voxel_x(8).abs() < 1e-12);
        assert!((g.voxel_x(0) + g.voxel_x(16)).abs() < 1e-12);
        assert!((g.voxel_y(0) + g.voxel_y(16)).abs() < 1e-12);
        assert!((g.voxel_z(0) + g.voxel_z(16)).abs() < 1e-12);
    }

    #[test]
    fn sizes_and_updates() {
        let g = CbctGeometry::ideal(8, 10, 12, 14);
        assert_eq!(g.volume_voxels(), 512);
        assert_eq!(g.projection_elements(), 14 * 10 * 12);
        assert_eq!(g.volume_bytes(), 2048);
        assert_eq!(g.voxel_updates(), 5120);
    }

    #[test]
    fn with_volume_preserves_field_of_view() {
        let g = CbctGeometry::ideal(64, 100, 96, 96);
        let h = g.with_volume(128, 128, 128);
        assert!((g.nx as f64 * g.dx - h.nx as f64 * h.dx).abs() < 1e-9);
        assert!((g.nz as f64 * g.dz - h.nz as f64 * h.dz).abs() < 1e-9);
        h.validate().unwrap();
    }

    #[test]
    fn footprint_radius_of_single_voxel_is_zero() {
        let mut g = CbctGeometry::ideal(16, 30, 24, 24);
        g.nx = 1;
        g.ny = 1;
        assert_eq!(g.footprint_radius(), 0.0);
    }
}
