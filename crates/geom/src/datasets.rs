//! Presets for the six real-world datasets of Section 6.1 and their
//! geometric corrections (Table 4).
//!
//! The raw scans themselves are proprietary / multi-hundred-GB downloads, so
//! the workspace substitutes analytic phantoms forward-projected through the
//! *same geometries*; these presets carry those geometries. Each preset also
//! offers [`DatasetPreset::scaled`] to shrink every axis by a power of two so
//! the same code paths run at laptop scale (the paper's own "Coffee bean 2x"
//! rebinning applies the identical trick).

use crate::CbctGeometry;

/// A named acquisition geometry from the paper's evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetPreset {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Where the paper sourced it (scanner / repository).
    pub provenance: &'static str,
    /// Acquisition geometry including Table 4 correction offsets.
    pub geometry: CbctGeometry,
}

impl DatasetPreset {
    /// Returns a copy with detector, projections, and volume shrunk by
    /// `2^log2` (pitches grown to preserve the field of view). `log2 = 0`
    /// returns the paper-scale geometry.
    pub fn scaled(&self, log2: u32) -> DatasetPreset {
        let f = 1usize << log2;
        let g = &self.geometry;
        let geometry = CbctGeometry {
            np: (g.np / f).max(8),
            nu: (g.nu / f).max(8),
            nv: (g.nv / f).max(8),
            du: g.du * f as f64,
            dv: g.dv * f as f64,
            nx: (g.nx / f).max(8),
            ny: (g.ny / f).max(8),
            nz: (g.nz / f).max(8),
            dx: g.dx * f as f64,
            dy: g.dy * f as f64,
            dz: g.dz * f as f64,
            sigma_u: g.sigma_u / f as f64,
            sigma_v: g.sigma_v / f as f64,
            ..g.clone()
        };
        DatasetPreset {
            name: self.name,
            provenance: self.provenance,
            geometry,
        }
    }

    /// Looks a preset up by paper name (e.g. `"tomo_00030"`).
    pub fn by_name(name: &str) -> Option<DatasetPreset> {
        DATASET_PRESETS.iter().map(|f| f()).find(|d| d.name == name)
    }
}

#[allow(clippy::too_many_arguments)]
fn preset(
    name: &'static str,
    provenance: &'static str,
    dso: f64,
    dsd: f64,
    np: usize,
    nu: usize,
    nv: usize,
    du: f64,
    dv: f64,
    n_out: usize,
    sigma_u: f64,
    sigma_v: f64,
    sigma_cor: f64,
) -> DatasetPreset {
    // Output voxel pitch: fit the volume's corner radius inside the largest
    // cylinder the fan beam can see at every angle (radius Dso·sin(fan/2)),
    // with a 5 % margin. For narrow fans this approaches the demagnified
    // detector width; for wide-fan microscope scans (coffee bean, fan ≈ 114°)
    // it is substantially tighter.
    let fan_half = (0.5 * nu as f64 * du / dsd).atan();
    let r_max = 0.95 * dso * fan_half.sin();
    let pitch = 2.0 * r_max / (n_out as f64 * std::f64::consts::SQRT_2);
    DatasetPreset {
        name,
        provenance,
        geometry: CbctGeometry {
            dso,
            dsd,
            np,
            nu,
            nv,
            du,
            dv,
            nx: n_out,
            ny: n_out,
            nz: n_out,
            dx: pitch,
            dy: pitch,
            dz: pitch,
            sigma_u,
            sigma_v,
            sigma_cor,
        },
    }
}

/// The six datasets of Section 6.1 with the Table 4 corrections.
///
/// * `coffee_bean` — Zeiss Xradia Versa 510 microscope CT, stitched detector
///   3728×2000, `N_p = 6401`, magnification 9.48, `σ_cor = −0.0021` mm.
/// * `bumblebee` — Nikon HMX ST 225 micro-CT, 2000², `N_p = 3142`,
///   magnification 16.9, `σ_cor = 1.03` mm.
/// * `tomo_00027/28/29` — TomoBank, 2004×1335, `N_p = 1800`,
///   `Dsd = 250`, `Dso = 100`, pitch 0.025 mm, `σ_u ∈ {25, 26, 27}` px.
/// * `tomo_00030` — TomoBank, 668×445, `N_p = 720`, `Dsd = 350`,
///   `Dso = 250`, pitch 0.075 mm, `σ_u = −10` px.
pub static DATASET_PRESETS: &[fn() -> DatasetPreset] = &[
    coffee_bean,
    bumblebee,
    tomo_00027,
    tomo_00028,
    tomo_00029,
    tomo_00030,
];

// `DATASET_PRESETS` stores constructors to keep the table `static`; iterate
// through this adapter for values.
impl DatasetPreset {
    /// All presets, constructed.
    pub fn all() -> Vec<DatasetPreset> {
        DATASET_PRESETS.iter().map(|f| f()).collect()
    }
}

/// Coffee-bean microscope-CT geometry (Section 6.1 dataset i).
pub fn coffee_bean() -> DatasetPreset {
    preset(
        "coffee_bean",
        "Zeiss Xradia Versa 510, 80 kV, stitched wide-field scan",
        16.0,
        151.7,
        6401,
        3728,
        2000,
        0.127,
        0.127,
        4096,
        0.0,
        0.0,
        -0.0021,
    )
}

/// Bumblebee micro-CT geometry (Section 6.1 dataset ii).
pub fn bumblebee() -> DatasetPreset {
    preset(
        "bumblebee",
        "Nikon Metrology HMX ST 225, 40 kV",
        39.8,
        672.5,
        3142,
        2000,
        2000,
        0.2,
        0.2,
        4096,
        0.0,
        0.0,
        1.03,
    )
}

/// TomoBank tomo_00027 geometry.
pub fn tomo_00027() -> DatasetPreset {
    preset(
        "tomo_00027",
        "TomoBank (De Carlo et al. 2018)",
        100.0,
        250.0,
        1800,
        2004,
        1335,
        0.025,
        0.025,
        2048,
        25.0,
        0.25,
        0.0,
    )
}

/// TomoBank tomo_00028 geometry.
pub fn tomo_00028() -> DatasetPreset {
    preset(
        "tomo_00028",
        "TomoBank (De Carlo et al. 2018)",
        100.0,
        250.0,
        1800,
        2004,
        1335,
        0.025,
        0.025,
        2048,
        26.0,
        0.25,
        0.0,
    )
}

/// TomoBank tomo_00029 geometry.
pub fn tomo_00029() -> DatasetPreset {
    preset(
        "tomo_00029",
        "TomoBank (De Carlo et al. 2018)",
        100.0,
        250.0,
        1800,
        2004,
        1335,
        0.025,
        0.025,
        2048,
        27.0,
        0.2,
        0.0,
    )
}

/// TomoBank tomo_00030 geometry.
pub fn tomo_00030() -> DatasetPreset {
    preset(
        "tomo_00030",
        "TomoBank (De Carlo et al. 2018)",
        250.0,
        350.0,
        720,
        668,
        445,
        0.075,
        0.075,
        512,
        -10.0,
        0.2,
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate_at_paper_scale() {
        for d in DatasetPreset::all() {
            d.geometry
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn coffee_bean_magnification_matches_paper() {
        let g = coffee_bean().geometry;
        assert!((g.magnification() - 9.48).abs() < 0.01);
    }

    #[test]
    fn bumblebee_magnification_matches_paper() {
        let g = bumblebee().geometry;
        assert!((g.magnification() - 16.9).abs() < 0.01);
    }

    #[test]
    fn table4_offsets_present() {
        assert_eq!(tomo_00029().geometry.sigma_u, 27.0);
        assert_eq!(tomo_00030().geometry.sigma_u, -10.0);
        assert_eq!(bumblebee().geometry.sigma_cor, 1.03);
        assert!((coffee_bean().geometry.sigma_cor + 0.0021).abs() < 1e-12);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(DatasetPreset::by_name("tomo_00028").is_some());
        assert!(DatasetPreset::by_name("nonexistent").is_none());
    }

    #[test]
    fn scaled_presets_validate_and_preserve_fov() {
        for d in DatasetPreset::all() {
            let s = d.scaled(4);
            s.geometry
                .validate()
                .unwrap_or_else(|e| panic!("{} scaled: {e}", d.name));
            assert!(s.geometry.nu <= d.geometry.nu / 16 + 8);
            // Field of view preserved to within the rounding of n/f.
            let fov0 = d.geometry.nx as f64 * d.geometry.dx;
            let fov1 = s.geometry.nx as f64 * s.geometry.dx;
            assert!((fov0 - fov1).abs() / fov0 < 0.1, "{}", d.name);
        }
    }

    #[test]
    fn scaling_clamps_to_minimum_size() {
        let tiny = tomo_00030().scaled(10);
        assert!(tiny.geometry.nu >= 8 && tiny.geometry.np >= 8);
        tiny.geometry.validate().unwrap();
    }
}
