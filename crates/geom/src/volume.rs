//! Dense `[z][y][x]` volume container, including Z-offset sub-volumes.

/// A dense f32 volume (or sub-volume slab) with `[z][y][x]` layout.
///
/// A *sub-volume* in the paper's sense is simply a `Volume` whose `z_offset`
/// is nonzero: slab `V_i` of the decomposition covers global slices
/// `[z_offset, z_offset + nz)`. The layout means one Z slice is contiguous,
/// which is what the store thread writes and what `MPI_Reduce` segments.
#[derive(Clone, Debug, PartialEq)]
pub struct Volume {
    nx: usize,
    ny: usize,
    nz: usize,
    z_offset: usize,
    data: Vec<f32>,
}

impl Volume {
    /// Allocates a zero-filled volume of `nx × ny × nz` voxels.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Volume {
            nx,
            ny,
            nz,
            z_offset: 0,
            data: vec![0.0; nx * ny * nz],
        }
    }

    /// Allocates a zero-filled sub-volume slab starting at global slice
    /// `z_offset`.
    pub fn zeros_slab(nx: usize, ny: usize, nz: usize, z_offset: usize) -> Self {
        Volume {
            z_offset,
            ..Volume::zeros(nx, ny, nz)
        }
    }

    /// Wraps existing data (length must be `nx·ny·nz`).
    pub fn from_data(nx: usize, ny: usize, nz: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), nx * ny * nz, "volume data length mismatch");
        Volume {
            nx,
            ny,
            nz,
            z_offset: 0,
            data,
        }
    }

    /// Grid extent along X.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }
    /// Grid extent along Y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }
    /// Grid extent along Z (number of local slices).
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }
    /// Global index of the first local slice.
    #[inline]
    pub fn z_offset(&self) -> usize {
        self.z_offset
    }
    /// Total voxel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// True if the volume holds no voxels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of local voxel `(i, j, k_local)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Voxel value at local `(i, j, k_local)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        self.data[self.index(i, j, k)]
    }

    /// Mutable voxel reference at local `(i, j, k_local)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize, k: usize) -> &mut f32 {
        let idx = self.index(i, j, k);
        &mut self.data[idx]
    }

    /// The whole voxel buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The whole voxel buffer, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One contiguous local Z slice.
    pub fn slice(&self, k: usize) -> &[f32] {
        assert!(k < self.nz, "slice {k} out of {}", self.nz);
        let stride = self.nx * self.ny;
        &self.data[k * stride..(k + 1) * stride]
    }

    /// One contiguous local Z slice, mutably.
    pub fn slice_mut(&mut self, k: usize) -> &mut [f32] {
        assert!(k < self.nz, "slice {k} out of {}", self.nz);
        let stride = self.nx * self.ny;
        &mut self.data[k * stride..(k + 1) * stride]
    }

    /// Copies a slab `src` (with its own `z_offset`) into the matching global
    /// slices of `self` (which must contain them).
    pub fn paste_slab(&mut self, src: &Volume) {
        assert_eq!(self.nx, src.nx);
        assert_eq!(self.ny, src.ny);
        let begin = src
            .z_offset
            .checked_sub(self.z_offset)
            .expect("slab starts before destination volume");
        assert!(
            begin + src.nz <= self.nz,
            "slab [{}, {}) exceeds destination [{}, {})",
            src.z_offset,
            src.z_offset + src.nz,
            self.z_offset,
            self.z_offset + self.nz
        );
        let stride = self.nx * self.ny;
        self.data[begin * stride..(begin + src.nz) * stride].copy_from_slice(&src.data);
    }

    /// Element-wise accumulation of another volume of identical shape
    /// (the reduction operator of the segmented `MPI_Reduce`).
    pub fn accumulate(&mut self, other: &Volume) {
        assert_eq!(
            self.data.len(),
            other.data.len(),
            "shape mismatch in accumulate"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Root-mean-square difference between two volumes of identical shape,
    /// computed in f64 (the paper's numerical assessment uses RMSE with a
    /// 1e-5 acceptance threshold).
    pub fn rmse(&self, other: &Volume) -> f64 {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch in rmse");
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        (sum / self.data.len() as f64).sqrt()
    }

    /// Maximum-intensity projection along an axis (0 = X, 1 = Y, 2 = Z):
    /// the standard volume-inspection rendering (the paper's Figure 11
    /// visualisations are the 3D-Slicer equivalent). Returns the image as
    /// `(width, height, pixels)` in row-major order.
    pub fn max_intensity_projection(&self, axis: usize) -> (usize, usize, Vec<f32>) {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        let (w, h): (usize, usize) = match axis {
            0 => (self.ny, self.nz),
            1 => (self.nx, self.nz),
            _ => (self.nx, self.ny),
        };
        let mut img = vec![f32::NEG_INFINITY; w * h];
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    let v = self.get(i, j, k);
                    let idx = match axis {
                        0 => k * w + j,
                        1 => k * w + i,
                        _ => j * w + i,
                    };
                    if v > img[idx] {
                        img[idx] = v;
                    }
                }
            }
        }
        if self.is_empty() {
            img.fill(0.0);
        }
        (w, h, img)
    }

    /// Maximum absolute voxel difference.
    pub fn max_abs_diff(&self, other: &Volume) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_z_major() {
        let mut v = Volume::zeros(3, 4, 5);
        *v.get_mut(2, 3, 4) = 7.0;
        assert_eq!(v.data()[4 * 12 + 3 * 3 + 2], 7.0);
        assert_eq!(v.get(2, 3, 4), 7.0);
    }

    #[test]
    fn slices_are_contiguous_and_disjoint() {
        let mut v = Volume::zeros(2, 2, 3);
        v.slice_mut(1).fill(5.0);
        assert!(v.slice(0).iter().all(|&x| x == 0.0));
        assert!(v.slice(1).iter().all(|&x| x == 5.0));
        assert!(v.slice(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn paste_slab_places_at_global_offset() {
        let mut dst = Volume::zeros(2, 2, 8);
        let mut slab = Volume::zeros_slab(2, 2, 2, 4);
        slab.data_mut().fill(3.0);
        dst.paste_slab(&slab);
        for k in 0..8 {
            let expect = if (4..6).contains(&k) { 3.0 } else { 0.0 };
            assert!(dst.slice(k).iter().all(|&x| x == expect), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds destination")]
    fn paste_slab_rejects_overflow() {
        let mut dst = Volume::zeros(2, 2, 4);
        let slab = Volume::zeros_slab(2, 2, 3, 2);
        dst.paste_slab(&slab);
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let mut a = Volume::from_data(2, 1, 1, vec![1.0, 2.0]);
        let b = Volume::from_data(2, 1, 1, vec![10.0, 20.0]);
        a.accumulate(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
    }

    #[test]
    fn rmse_and_max_diff() {
        let a = Volume::from_data(2, 2, 1, vec![0.0, 0.0, 0.0, 0.0]);
        let b = Volume::from_data(2, 2, 1, vec![1.0, -1.0, 1.0, -1.0]);
        assert!((a.rmse(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert_eq!(a.rmse(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_data_rejects_bad_length() {
        let _ = Volume::from_data(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn mip_projects_the_brightest_voxel() {
        let mut v = Volume::zeros(3, 4, 5);
        *v.get_mut(1, 2, 3) = 9.0;
        *v.get_mut(1, 2, 0) = 4.0;
        let (w, h, z_img) = v.max_intensity_projection(2);
        assert_eq!((w, h), (3, 4));
        assert_eq!(z_img[2 * 3 + 1], 9.0); // (i=1, j=2)
        assert_eq!(z_img[0], 0.0);
        let (w, h, x_img) = v.max_intensity_projection(0);
        assert_eq!((w, h), (4, 5));
        assert_eq!(x_img[3 * 4 + 2], 9.0); // (j=2, k=3)
        let (w, h, y_img) = v.max_intensity_projection(1);
        assert_eq!((w, h), (3, 5));
        assert_eq!(y_img[3 * 3 + 1], 9.0); // (i=1, k=3)
        assert_eq!(y_img[1], 4.0); // (i=1, k=0)
    }

    #[test]
    #[should_panic(expected = "axis must be")]
    fn mip_rejects_bad_axis() {
        let _ = Volume::zeros(2, 2, 2).max_intensity_projection(3);
    }

    #[test]
    fn empty_volume() {
        let v = Volume::zeros(0, 4, 4);
        assert!(v.is_empty());
        assert_eq!(v.rmse(&v), 0.0);
    }
}
