//! The paper's decomposition maths: Algorithm 2 (`ComputeAB`), the
//! sub-volume slabs of Eq 3–4, the overlap of Figure 4, and the differential
//! update ranges of Eq 6–7.

use crate::{CbctGeometry, ProjectionMatrix};

/// A half-open range `[begin, end)` of global detector rows (the `a_i b_i`
/// intervals of the paper, stated there in inclusive notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowRange {
    /// First row required.
    pub begin: usize,
    /// One past the last row required.
    pub end: usize,
}

impl RowRange {
    /// Creates a range; `begin` may equal `end` (empty).
    pub fn new(begin: usize, end: usize) -> Self {
        assert!(begin <= end, "RowRange begin {begin} > end {end}");
        RowRange { begin, end }
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// True if no rows are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// True if `row` lies inside the range.
    #[inline]
    pub fn contains(&self, row: usize) -> bool {
        (self.begin..self.end).contains(&row)
    }

    /// Intersection (empty ranges normalise to `[0,0)`).
    pub fn intersect(&self, other: &RowRange) -> RowRange {
        let begin = self.begin.max(other.begin);
        let end = self.end.min(other.end);
        if begin >= end {
            RowRange::new(0, 0)
        } else {
            RowRange::new(begin, end)
        }
    }

    /// Smallest range containing both.
    pub fn hull(&self, other: &RowRange) -> RowRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        RowRange::new(self.begin.min(other.begin), self.end.max(other.end))
    }

    /// Set difference `self \ other` — up to two disjoint ranges.
    pub fn difference(&self, other: &RowRange) -> Vec<RowRange> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            if self.is_empty() {
                return Vec::new();
            }
            return vec![*self];
        }
        let mut parts = Vec::new();
        if self.begin < inter.begin {
            parts.push(RowRange::new(self.begin, inter.begin));
        }
        if inter.end < self.end {
            parts.push(RowRange::new(inter.end, self.end));
        }
        parts
    }
}

/// Extra detector rows added on each side of the analytically computed range
/// to absorb the f32 rounding of the kernel's projection arithmetic.
const ROW_GUARD: usize = 1;

fn ab_from_extrema(geom: &CbctGeometry, y_min: f64, y_max: f64) -> RowRange {
    // floor(min) .. floor(max)+1 are the rows touched by bilinear
    // interpolation; +1 guard row on each side for f32 rounding.
    let a = (y_min.floor() as i64 - ROW_GUARD as i64).clamp(0, geom.nv as i64) as usize;
    let b = (y_max.floor() as i64 + 2 + ROW_GUARD as i64).clamp(0, geom.nv as i64) as usize;
    RowRange::new(a.min(b), b)
}

/// Algorithm 2: the maximum detector-row range needed to reconstruct slices
/// `[begin_idx, end_idx)` of the volume.
///
/// Projects the corner voxel `(0, 0, ·)` of the first and last slice with
/// the matrices at 135° and 315° — the angles at which that voxel makes its
/// farthest and nearest approach to the source (Figure 5) — and takes
/// floor/ceil of the four detector `v` coordinates. Exact for square
/// footprints (`N_x·Δx = N_y·Δy`, the paper's setting); see
/// [`compute_ab_conservative`] for the general bound.
pub fn compute_ab(geom: &CbctGeometry, begin_idx: usize, end_idx: usize) -> RowRange {
    assert!(begin_idx < end_idx, "empty slab [{begin_idx}, {end_idx})");
    let m135 = ProjectionMatrix::new(geom, 135f64.to_radians());
    let m315 = ProjectionMatrix::new(geom, 315f64.to_radians());
    let k0 = begin_idx as f64;
    let k1 = (end_idx - 1) as f64;
    let ys = [
        m135.project(0.0, 0.0, k0).1,
        m315.project(0.0, 0.0, k0).1,
        m135.project(0.0, 0.0, k1).1,
        m315.project(0.0, 0.0, k1).1,
    ];
    let y_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    ab_from_extrema(geom, y_min, y_max)
}

/// Conservative variant of [`compute_ab`] that is exact for *any* rectangular
/// footprint: instead of sampling two fixed angles it bounds the depth by
/// `D_so ∓ r` with `r` the footprint radius, which is where the detector `v`
/// magnification is extremal.
pub fn compute_ab_conservative(geom: &CbctGeometry, begin_idx: usize, end_idx: usize) -> RowRange {
    assert!(begin_idx < end_idx, "empty slab [{begin_idx}, {end_idx})");
    let r = geom.footprint_radius();
    let cv = 0.5 * (geom.nv as f64 - 1.0) + geom.sigma_v;
    // |σ_cor| adds to the worst-case lateral reach but not to depth; depth
    // extremes are Dso ± r.
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for k in [begin_idx as f64, (end_idx - 1) as f64] {
        let zw = geom.dz * (k - 0.5 * (geom.nz as f64 - 1.0));
        for depth in [geom.dso - r, geom.dso + r] {
            let v = geom.dsd / geom.dv * (-zw) / depth + cv;
            y_min = y_min.min(v);
            y_max = y_max.max(v);
        }
    }
    ab_from_extrema(geom, y_min, y_max)
}

/// One sub-volume reconstruction task of the decomposition (Figure 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubVolumeTask {
    /// Slab index `i` in `[0, N_n)`.
    pub index: usize,
    /// First global slice of the slab (`i·N_b`).
    pub z_begin: usize,
    /// One past the last global slice (`min((i+1)·N_b, N_z)`).
    pub z_end: usize,
    /// Detector rows required: `a_i b_i` (Eq 4).
    pub rows: RowRange,
    /// Rows *newly* required relative to the previous slab — the
    /// differential update `b_i b_{i+1}` of Eq 6. For slab 0 this equals
    /// `rows`.
    pub new_rows: RowRange,
}

impl SubVolumeTask {
    /// Number of slices in the slab.
    #[inline]
    pub fn nz(&self) -> usize {
        self.z_end - self.z_begin
    }

    /// Eq 5: elements of the partial projections a single rank (out of `nr`
    /// splitting `N_p`) loads for this slab from scratch.
    pub fn size_ab(&self, geom: &CbctGeometry, nr: usize) -> usize {
        geom.nu * (geom.np / nr) * self.rows.len()
    }

    /// Eq 7: elements a single rank loads for the *differential* update.
    pub fn size_bb(&self, geom: &CbctGeometry, nr: usize) -> usize {
        geom.nu * (geom.np / nr) * self.new_rows.len()
    }
}

/// The complete sub-volume decomposition of one volume (or one group's slab
/// of a distributed run): `N_n = ⌈N_z / N_b⌉` tasks with overlap-aware
/// differential row ranges.
#[derive(Clone, Debug)]
pub struct VolumeDecomposition {
    /// Slab thickness `N_b` (slices per sub-volume).
    pub nb: usize,
    /// First global slice covered (0 for a single-node run).
    pub z_begin: usize,
    /// One past the last global slice covered.
    pub z_end: usize,
    tasks: Vec<SubVolumeTask>,
}

impl VolumeDecomposition {
    /// Decomposes global slices `[z_begin, z_end)` into slabs of `nb` slices
    /// (the last slab may be thinner if `nb` does not divide the slice
    /// count).
    ///
    /// # Panics
    /// Panics if `nb == 0` or the slice range is empty/out of bounds.
    pub fn new(geom: &CbctGeometry, z_begin: usize, z_end: usize, nb: usize) -> Self {
        assert!(nb > 0, "slab thickness nb must be positive");
        assert!(
            z_begin < z_end && z_end <= geom.nz,
            "slice range [{z_begin}, {z_end}) invalid for nz={}",
            geom.nz
        );
        let mut tasks = Vec::new();
        let mut prev: Option<RowRange> = None;
        let mut z = z_begin;
        let mut index = 0;
        while z < z_end {
            let zt = (z + nb).min(z_end);
            let rows = compute_ab(geom, z, zt);
            let new_rows = match prev {
                None => rows,
                Some(p) => {
                    let parts = rows.difference(&p);
                    match parts.len() {
                        0 => RowRange::new(rows.begin, rows.begin),
                        1 => parts[0],
                        _ => unreachable!(
                            "row ranges of consecutive slabs move monotonically; \
                             got a two-sided difference"
                        ),
                    }
                }
            };
            tasks.push(SubVolumeTask {
                index,
                z_begin: z,
                z_end: zt,
                rows,
                new_rows,
            });
            prev = Some(rows);
            z = zt;
            index += 1;
        }
        VolumeDecomposition {
            nb,
            z_begin,
            z_end,
            tasks,
        }
    }

    /// Decomposes the full volume (Eq 3: `N_n = N_z / N_b`).
    pub fn full(geom: &CbctGeometry, nb: usize) -> Self {
        Self::new(geom, 0, geom.nz, nb)
    }

    /// Number of sub-volumes `N_n`.
    #[inline]
    pub fn num_subvolumes(&self) -> usize {
        self.tasks.len()
    }

    /// The ordered tasks.
    #[inline]
    pub fn tasks(&self) -> &[SubVolumeTask] {
        &self.tasks
    }

    /// Largest per-slab row-range length — the minimum device window height
    /// `H` that lets Algorithm 3 stream the whole reconstruction.
    pub fn max_rows(&self) -> usize {
        self.tasks.iter().map(|t| t.rows.len()).max().unwrap_or(0)
    }

    /// Total rows loaded with differential updates (Eq 6–7): slab 0's full
    /// range plus each subsequent slab's new rows. Without the overlap reuse
    /// the total would be the sum of all `rows.len()`.
    pub fn total_rows_differential(&self) -> usize {
        self.tasks.iter().map(|t| t.new_rows.len()).sum()
    }

    /// Total rows loaded if every slab reloaded its full range (the Lu et
    /// al. / iFDK baseline behaviour the paper calls redundant).
    pub fn total_rows_full_reload(&self) -> usize {
        self.tasks.iter().map(|t| t.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection_angle;

    fn geom() -> CbctGeometry {
        CbctGeometry::ideal(64, 97, 128, 128)
    }

    /// Brute-force the true row extrema over all scan angles and all voxels
    /// of the slab boundary slices.
    fn brute_force_rows(g: &CbctGeometry, z0: usize, z1: usize) -> (f64, f64) {
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for s in 0..g.np {
            let m = ProjectionMatrix::new(g, projection_angle(s, g.np));
            for &k in &[z0, z1 - 1] {
                for i in [0, g.nx - 1] {
                    for j in [0, g.ny - 1] {
                        let (_, y, _) = m.project(i as f64, j as f64, k as f64);
                        y_min = y_min.min(y);
                        y_max = y_max.max(y);
                    }
                }
            }
        }
        (y_min, y_max)
    }

    #[test]
    fn compute_ab_covers_brute_force_extrema() {
        let g = geom();
        for (z0, z1) in [(0, 8), (24, 40), (56, 64), (0, 64)] {
            let r = compute_ab(&g, z0, z1);
            let (y_min, y_max) = brute_force_rows(&g, z0, z1);
            assert!(
                (r.begin as f64) <= y_min.max(0.0),
                "slab [{z0},{z1}): begin {} > min {y_min}",
                r.begin
            );
            assert!(
                (r.end as f64) >= (y_max + 1.0).min(g.nv as f64),
                "slab [{z0},{z1}): end {} < max {y_max}",
                r.end
            );
        }
    }

    #[test]
    fn compute_ab_is_tight_within_guard() {
        // The bound should not be grossly larger than the brute-force need.
        let g = geom();
        let r = compute_ab(&g, 28, 36);
        let (y_min, y_max) = brute_force_rows(&g, 28, 36);
        let need = y_max.ceil() - y_min.floor() + 2.0;
        assert!(
            (r.len() as f64) <= need + 2.0 * (ROW_GUARD as f64 + 1.0),
            "range {} vs need {need}",
            r.len()
        );
    }

    #[test]
    fn conservative_contains_literal() {
        let g = geom();
        for (z0, z1) in [(0, 16), (16, 32), (48, 64)] {
            let lit = compute_ab(&g, z0, z1);
            let cons = compute_ab_conservative(&g, z0, z1);
            assert!(cons.begin <= lit.begin && cons.end >= lit.end);
        }
    }

    #[test]
    fn conservative_equals_literal_for_square_footprint() {
        let g = geom();
        for (z0, z1) in [(0, 16), (32, 48)] {
            let lit = compute_ab(&g, z0, z1);
            let cons = compute_ab_conservative(&g, z0, z1);
            // Same analytic extrema; allow ±1 row from floor/ceil edges.
            assert!((lit.begin as i64 - cons.begin as i64).abs() <= 1);
            assert!((lit.end as i64 - cons.end as i64).abs() <= 1);
        }
    }

    #[test]
    fn middle_slab_needs_fewer_rows_than_whole_volume() {
        let g = geom();
        let mid = compute_ab(&g, 28, 36);
        let all = compute_ab(&g, 0, 64);
        assert!(mid.len() < all.len());
        assert!(all.begin <= mid.begin && all.end >= mid.end);
    }

    #[test]
    fn decomposition_covers_all_slices_without_gaps() {
        let g = geom();
        for nb in [4, 8, 16, 64] {
            let d = VolumeDecomposition::full(&g, nb);
            assert_eq!(d.num_subvolumes(), g.nz.div_ceil(nb));
            let mut expect = 0;
            for t in d.tasks() {
                assert_eq!(t.z_begin, expect);
                expect = t.z_end;
                assert!(t.nz() <= nb);
            }
            assert_eq!(expect, g.nz);
        }
    }

    #[test]
    fn ragged_last_slab() {
        let g = geom();
        let d = VolumeDecomposition::full(&g, 24);
        let last = d.tasks().last().unwrap();
        assert_eq!(last.nz(), 64 - 2 * 24);
    }

    #[test]
    fn consecutive_slabs_overlap_and_differential_is_consistent() {
        let g = geom();
        let d = VolumeDecomposition::full(&g, 8);
        for w in d.tasks().windows(2) {
            let (prev, cur) = (&w[0], &w[1]);
            // Overlap exists (Figure 4): the shared area a_{i+1} b_i.
            assert!(!prev.rows.intersect(&cur.rows).is_empty());
            // new_rows ∪ (cur ∩ prev) == cur.rows.
            let inter = cur.rows.intersect(&prev.rows);
            assert_eq!(cur.new_rows.len() + inter.len(), cur.rows.len());
            // new_rows is disjoint from the previous range.
            assert!(cur.new_rows.intersect(&prev.rows).is_empty());
        }
    }

    #[test]
    fn differential_total_is_much_smaller_than_full_reload() {
        let g = geom();
        let d = VolumeDecomposition::full(&g, 4);
        let diff = d.total_rows_differential();
        let full = d.total_rows_full_reload();
        assert!(diff < full, "diff={diff} full={full}");
        // Differential loading never exceeds the detector height by much —
        // each row is loaded at most once (plus guard effects).
        assert!(diff <= g.nv + 4 * d.num_subvolumes());
    }

    #[test]
    fn eq5_eq7_sizes() {
        let g = geom();
        let d = VolumeDecomposition::full(&g, 16);
        let t = &d.tasks()[1];
        let nr = 4;
        assert_eq!(t.size_ab(&g, nr), g.nu * (g.np / nr) * t.rows.len());
        assert_eq!(t.size_bb(&g, nr), g.nu * (g.np / nr) * t.new_rows.len());
        assert!(t.size_bb(&g, nr) < t.size_ab(&g, nr));
    }

    #[test]
    fn max_rows_bounds_every_slab() {
        let g = geom();
        let d = VolumeDecomposition::full(&g, 8);
        let h = d.max_rows();
        assert!(d.tasks().iter().all(|t| t.rows.len() <= h));
        assert!(h <= g.nv);
    }

    #[test]
    fn partial_volume_decomposition_respects_range() {
        let g = geom();
        let d = VolumeDecomposition::new(&g, 16, 48, 8);
        assert_eq!(d.num_subvolumes(), 4);
        assert_eq!(d.tasks()[0].z_begin, 16);
        assert_eq!(d.tasks().last().unwrap().z_end, 48);
    }

    #[test]
    fn row_range_set_operations() {
        let a = RowRange::new(10, 20);
        let b = RowRange::new(15, 30);
        assert_eq!(a.intersect(&b), RowRange::new(15, 20));
        assert_eq!(a.hull(&b), RowRange::new(10, 30));
        assert_eq!(a.difference(&b), vec![RowRange::new(10, 15)]);
        assert_eq!(b.difference(&a), vec![RowRange::new(20, 30)]);
        let c = RowRange::new(0, 5);
        assert_eq!(a.difference(&c), vec![a]);
        assert_eq!(a.difference(&RowRange::new(0, 40)), vec![]);
        let split = RowRange::new(0, 40).difference(&a);
        assert_eq!(split, vec![RowRange::new(0, 10), RowRange::new(20, 40)]);
        assert!(RowRange::new(3, 3).is_empty());
        assert!(a.contains(10) && !a.contains(20));
    }

    #[test]
    #[should_panic(expected = "invalid for nz")]
    fn decomposition_rejects_bad_range() {
        let g = geom();
        let _ = VolumeDecomposition::new(&g, 0, g.nz + 1, 8);
    }
}
