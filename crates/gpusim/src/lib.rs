//! Simulated GPU accelerator.
//!
//! No CUDA device exists in this environment, so this crate supplies the two
//! properties of a GPU that the paper's contribution actually depends on:
//!
//! 1. **A hard device-memory capacity** — the entire point of the
//!    out-of-core decomposition is that a 4096³ volume (256 GB) does not fit
//!    in a 16 GB V100. [`Device`] enforces the capacity on every
//!    [`Device::alloc`] and fails with [`DeviceError::OutOfMemory`] exactly
//!    where RTK fails in Table 5 (the ✗ cells).
//! 2. **A calibrated cost model** — [`DeviceSpec`] carries the measured
//!    constants of the paper's evaluation hardware (V100: ~115 GUPS
//!    back-projection, PCIe 3.0 ×16 ≈ 12 GB/s; A100: ~155 GUPS, ×16 PCIe 4)
//!    and converts byte/update counts into simulated seconds, which the
//!    discrete-event pipeline and the Table 5 / Figure 13–15 harnesses
//!    consume.
//!
//! Transfers and kernel launches are also *counted* ([`DeviceCounters`]) so
//! ablation benches can compare data-movement volumes between decomposition
//! schemes without any timing at all.

mod device;
mod spec;
mod stream;

pub use device::{
    Device, DeviceBuffer, DeviceCounters, DeviceError, FLOPS_PER_UPDATE, TRANSFER_SIZE_BOUNDS,
};
pub use spec::DeviceSpec;
pub use stream::{Stream, StreamOp};
