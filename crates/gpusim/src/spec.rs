//! Device presets with the paper's measured constants.

/// Performance/capacity description of a simulated accelerator.
///
/// The conversion methods return **simulated seconds** for a given amount of
/// work; they are pure functions of the spec, usable both by the
/// discrete-event pipeline and by the analytic performance model.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Peak single-precision FLOP/s (roofline ceiling, Figure 12).
    pub peak_flops: f64,
    /// Sustained back-projection throughput in updates/s (the paper's GUPS
    /// × 1e9; Table 5 measures 111–129 GUPS on V100, 125–166 on A100).
    pub bp_updates_per_sec: f64,
    /// Device-memory bandwidth in bytes/s (roofline slope).
    pub hbm_bytes_per_sec: f64,
    /// Host↔device interconnect bandwidth in bytes/s (`BW_pci`).
    pub pcie_bytes_per_sec: f64,
}

impl DeviceSpec {
    /// Nvidia Tesla V100 SXM2 16 GB as deployed in ABCI compute nodes
    /// (PCIe 3.0 ×16 host link).
    pub fn v100_16gb() -> Self {
        DeviceSpec {
            name: "V100-16GB",
            memory_bytes: 16 * (1 << 30),
            peak_flops: 15.7e12,
            bp_updates_per_sec: 115e9,
            hbm_bytes_per_sec: 900e9,
            pcie_bytes_per_sec: 12.0e9,
        }
    }

    /// Nvidia Tesla A100 SXM4 40 GB (Section 6.2's second platform).
    pub fn a100_40gb() -> Self {
        DeviceSpec {
            name: "A100-40GB",
            memory_bytes: 40 * (1 << 30),
            peak_flops: 19.5e12,
            bp_updates_per_sec: 155e9,
            hbm_bytes_per_sec: 1555e9,
            pcie_bytes_per_sec: 20.0e9,
        }
    }

    /// A deliberately tiny device for exercising out-of-core paths at test
    /// scale: `memory_bytes` chosen by the caller.
    pub fn tiny(memory_bytes: u64) -> Self {
        DeviceSpec {
            name: "tiny-sim",
            memory_bytes,
            peak_flops: 1e12,
            bp_updates_per_sec: 10e9,
            hbm_bytes_per_sec: 100e9,
            pcie_bytes_per_sec: 2e9,
        }
    }

    /// Simulated seconds for a host→device or device→host copy of `bytes`.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bytes_per_sec
    }

    /// Simulated seconds for a back-projection of `updates` voxel updates
    /// (`T_bp` of the performance model, Eq 14 with `TH_bp` = this spec).
    pub fn backprojection_secs(&self, updates: u64) -> f64 {
        updates as f64 / self.bp_updates_per_sec
    }

    /// The roofline-attainable FLOP/s at arithmetic intensity `ai`
    /// (FLOP/byte): `min(peak, AI·BW)`.
    pub fn roofline_flops(&self, ai: f64) -> f64 {
        (ai * self.hbm_bytes_per_sec).min(self.peak_flops)
    }

    /// The ridge point (FLOP/byte) where the roofline turns flat.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_flops / self.hbm_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_constants() {
        let v = DeviceSpec::v100_16gb();
        assert_eq!(v.memory_bytes, 17_179_869_184);
        assert!((v.peak_flops - 15.7e12).abs() < 1e9);
        // Paper: RTK ≈ 104.7–113.7 GUPS, ours ≈ 115 average.
        assert!(v.bp_updates_per_sec >= 100e9 && v.bp_updates_per_sec <= 130e9);
    }

    #[test]
    fn a100_is_faster_and_larger() {
        let v = DeviceSpec::v100_16gb();
        let a = DeviceSpec::a100_40gb();
        assert!(a.memory_bytes > v.memory_bytes);
        assert!(a.bp_updates_per_sec > v.bp_updates_per_sec);
        // Table 5: A100 speedup roughly tracks the peak-FLOPs ratio.
        let flops_ratio = a.peak_flops / v.peak_flops;
        let gups_ratio = a.bp_updates_per_sec / v.bp_updates_per_sec;
        assert!((flops_ratio - gups_ratio).abs() < 0.2);
    }

    #[test]
    fn transfer_time_is_linear() {
        let v = DeviceSpec::v100_16gb();
        let t1 = v.transfer_secs(1 << 30);
        let t2 = v.transfer_secs(2 << 30);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        // 1 GiB over ~12 GB/s ≈ 0.09 s.
        assert!((t1 - 0.0894).abs() < 0.01);
    }

    #[test]
    fn backprojection_time_matches_table5_scale() {
        // Table 5: tomo_00030 → 1024³ on V100 takes T_bp ≈ 6.7 s.
        let v = DeviceSpec::v100_16gb();
        let updates = 1024u64 * 1024 * 1024 * 720;
        let t = v.backprojection_secs(updates);
        assert!((t - 6.7).abs() < 1.0, "modelled {t} s");
    }

    #[test]
    fn roofline_has_bandwidth_and_compute_regimes() {
        let v = DeviceSpec::v100_16gb();
        let ridge = v.ridge_intensity();
        assert!(ridge > 10.0 && ridge < 30.0); // 15.7e12/900e9 ≈ 17.4
        assert!(v.roofline_flops(ridge / 2.0) < v.peak_flops);
        assert_eq!(v.roofline_flops(ridge * 10.0), v.peak_flops);
        // Figure 12: the kernel's AI (40.9+) puts it in the compute regime.
        assert_eq!(v.roofline_flops(40.9), v.peak_flops);
    }
}
