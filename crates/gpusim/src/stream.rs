//! Simulated CUDA-style streams: in-order queues with simulated timestamps.

use crate::Device;

/// One operation enqueued on a [`Stream`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamOp {
    /// Host→device copy of `bytes`.
    H2D(u64),
    /// Device→host copy of `bytes`.
    D2H(u64),
    /// Back-projection kernel over `updates` voxel updates.
    Backprojection(u64),
}

/// An in-order execution queue on a device, tracking the simulated clock at
/// which each enqueued operation completes. Two streams on one device
/// overlap freely (the hardware's copy/compute engines), which is how the
/// paper overlaps `T_H2D` with `T_bp` (Section 6.2: "the data movement …
/// is overlapped with the filtering computation").
#[derive(Clone, Debug)]
pub struct Stream {
    device: Device,
    /// Simulated time at which the last enqueued op completes.
    horizon: f64,
}

impl Stream {
    /// Creates a stream whose clock starts at `start` simulated seconds.
    pub fn new(device: &Device, start: f64) -> Self {
        Stream {
            device: device.clone(),
            horizon: start,
        }
    }

    /// Enqueues an operation no earlier than `ready_at` (dependency edge);
    /// returns the simulated completion time.
    pub fn enqueue_after(&mut self, op: StreamOp, ready_at: f64) -> f64 {
        let start = self.horizon.max(ready_at);
        let dur = match op {
            StreamOp::H2D(bytes) => self.device.h2d(bytes),
            StreamOp::D2H(bytes) => self.device.d2h(bytes),
            StreamOp::Backprojection(updates) => self.device.launch_backprojection(updates),
        };
        self.horizon = start + dur;
        self.horizon
    }

    /// Enqueues an operation with no external dependency.
    pub fn enqueue(&mut self, op: StreamOp) -> f64 {
        self.enqueue_after(op, 0.0)
    }

    /// Simulated time at which all enqueued work completes.
    #[inline]
    pub fn synchronize(&self) -> f64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceSpec;

    #[test]
    fn ops_serialize_within_a_stream() {
        let d = Device::new(DeviceSpec::tiny(1 << 30));
        let mut s = Stream::new(&d, 0.0);
        let t1 = s.enqueue(StreamOp::H2D(2_000_000_000)); // 1 s at 2 GB/s
        let t2 = s.enqueue(StreamOp::Backprojection(10_000_000_000)); // 1 s at 10 GUPS
        assert!((t1 - 1.0).abs() < 1e-9);
        assert!((t2 - 2.0).abs() < 1e-9);
        assert_eq!(s.synchronize(), t2);
    }

    #[test]
    fn independent_streams_overlap() {
        let d = Device::new(DeviceSpec::tiny(1 << 30));
        let mut copy = Stream::new(&d, 0.0);
        let mut compute = Stream::new(&d, 0.0);
        let tc = copy.enqueue(StreamOp::H2D(2_000_000_000));
        let tk = compute.enqueue(StreamOp::Backprojection(10_000_000_000));
        // Both finish at ~1 s: they overlapped rather than serialised.
        assert!((tc - 1.0).abs() < 1e-9);
        assert!((tk - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_edges_are_respected() {
        let d = Device::new(DeviceSpec::tiny(1 << 30));
        let mut copy = Stream::new(&d, 0.0);
        let mut compute = Stream::new(&d, 0.0);
        let ready = copy.enqueue(StreamOp::H2D(2_000_000_000));
        // The kernel depends on the copy: starts at 1 s, ends at 2 s.
        let done = compute.enqueue_after(StreamOp::Backprojection(10_000_000_000), ready);
        assert!((done - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stream_start_offset() {
        let d = Device::new(DeviceSpec::tiny(1 << 30));
        let mut s = Stream::new(&d, 5.0);
        let t = s.enqueue(StreamOp::D2H(2_000_000_000));
        assert!((t - 6.0).abs() < 1e-9);
    }
}
