//! The simulated device: capacity enforcement and traffic counters.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::DeviceSpec;

/// Errors from device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation would exceed the device memory capacity — the failure
    /// mode of the non-out-of-core baselines in Table 5 (RTK cannot build
    /// volumes beyond 8 GB on a 16 GB V100).
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested} B, free {free} B")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Cumulative traffic/work counters of one device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceCounters {
    /// Host→device bytes transferred.
    pub h2d_bytes: u64,
    /// Device→host bytes transferred.
    pub d2h_bytes: u64,
    /// Number of H2D transfer calls.
    pub h2d_calls: u64,
    /// Number of D2H transfer calls.
    pub d2h_calls: u64,
    /// Voxel updates executed by kernels.
    pub kernel_updates: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Simulated seconds accumulated by transfers.
    pub transfer_secs: f64,
    /// Simulated seconds accumulated by kernels.
    pub kernel_secs: f64,
    /// High-water mark of allocated bytes.
    pub peak_allocated: u64,
}

struct Inner {
    spec: DeviceSpec,
    allocated: u64,
    counters: DeviceCounters,
}

/// A simulated accelerator with enforced memory capacity and counted,
/// time-modelled transfers and kernel launches. Cheap to clone (shared
/// state).
#[derive(Clone)]
pub struct Device {
    inner: Arc<Mutex<Inner>>,
}

/// An RAII device-memory allocation; freed (and returned to the device's
/// budget) on drop.
pub struct DeviceBuffer {
    device: Arc<Mutex<Inner>>,
    bytes: u64,
}

impl DeviceBuffer {
    /// Allocation size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl std::fmt::Debug for DeviceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer").field("bytes", &self.bytes).finish()
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        let mut inner = self.device.lock();
        inner.allocated -= self.bytes;
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Device")
            .field("spec", &inner.spec.name)
            .field("allocated", &inner.allocated)
            .finish()
    }
}

impl Device {
    /// Creates a device of the given spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Device {
            inner: Arc::new(Mutex::new(Inner {
                spec,
                allocated: 0,
                counters: DeviceCounters::default(),
            })),
        }
    }

    /// The device spec.
    pub fn spec(&self) -> DeviceSpec {
        self.inner.lock().spec.clone()
    }

    /// Currently allocated bytes.
    pub fn allocated(&self) -> u64 {
        self.inner.lock().allocated
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        let inner = self.inner.lock();
        inner.spec.memory_bytes - inner.allocated
    }

    /// Allocates `bytes` of device memory, enforcing the capacity.
    pub fn alloc(&self, bytes: u64) -> Result<DeviceBuffer, DeviceError> {
        let mut inner = self.inner.lock();
        let free = inner.spec.memory_bytes - inner.allocated;
        if bytes > free {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                free,
            });
        }
        inner.allocated += bytes;
        inner.counters.peak_allocated = inner.counters.peak_allocated.max(inner.allocated);
        Ok(DeviceBuffer {
            device: Arc::clone(&self.inner),
            bytes,
        })
    }

    /// Records a host→device copy; returns the simulated duration (s).
    pub fn h2d(&self, bytes: u64) -> f64 {
        let mut inner = self.inner.lock();
        let secs = inner.spec.transfer_secs(bytes);
        inner.counters.h2d_bytes += bytes;
        inner.counters.h2d_calls += 1;
        inner.counters.transfer_secs += secs;
        secs
    }

    /// Records a device→host copy; returns the simulated duration (s).
    pub fn d2h(&self, bytes: u64) -> f64 {
        let mut inner = self.inner.lock();
        let secs = inner.spec.transfer_secs(bytes);
        inner.counters.d2h_bytes += bytes;
        inner.counters.d2h_calls += 1;
        inner.counters.transfer_secs += secs;
        secs
    }

    /// Records a back-projection launch of `updates` voxel updates; returns
    /// the simulated duration (s).
    pub fn launch_backprojection(&self, updates: u64) -> f64 {
        let mut inner = self.inner.lock();
        let secs = inner.spec.backprojection_secs(updates);
        inner.counters.kernel_updates += updates;
        inner.counters.kernel_launches += 1;
        inner.counters.kernel_secs += secs;
        secs
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> DeviceCounters {
        self.inner.lock().counters
    }

    /// Resets the counters (not the allocations).
    pub fn reset_counters(&self) {
        self.inner.lock().counters = DeviceCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_enforces_capacity() {
        let d = Device::new(DeviceSpec::tiny(1000));
        let a = d.alloc(600).unwrap();
        assert_eq!(d.allocated(), 600);
        let err = d.alloc(500).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 500,
                free: 400
            }
        );
        drop(a);
        assert_eq!(d.allocated(), 0);
        d.alloc(1000).unwrap();
    }

    #[test]
    fn rtk_style_full_volume_fails_on_v100() {
        // Table 5: a 2048³ volume (32 GB) cannot be allocated on a 16 GB
        // V100 — the reason RTK's column shows ✗.
        let d = Device::new(DeviceSpec::v100_16gb());
        let vol_2048 = 2048u64 * 2048 * 2048 * 4;
        assert!(d.alloc(vol_2048).is_err());
        // A 1024³ volume (4 GB) fits.
        assert!(d.alloc(1024u64 * 1024 * 1024 * 4).is_ok());
    }

    #[test]
    fn counters_track_traffic_and_time() {
        let d = Device::new(DeviceSpec::tiny(1 << 20));
        let t1 = d.h2d(2_000_000);
        let t2 = d.d2h(4_000_000);
        let t3 = d.launch_backprojection(50_000_000);
        let c = d.counters();
        assert_eq!(c.h2d_bytes, 2_000_000);
        assert_eq!(c.d2h_bytes, 4_000_000);
        assert_eq!(c.h2d_calls, 1);
        assert_eq!(c.d2h_calls, 1);
        assert_eq!(c.kernel_updates, 50_000_000);
        assert_eq!(c.kernel_launches, 1);
        assert!((c.transfer_secs - (t1 + t2)).abs() < 1e-12);
        assert!((c.kernel_secs - t3).abs() < 1e-12);
        assert!(t2 > t1);
        d.reset_counters();
        assert_eq!(d.counters(), DeviceCounters::default());
    }

    #[test]
    fn peak_allocation_watermark() {
        let d = Device::new(DeviceSpec::tiny(1000));
        {
            let _a = d.alloc(700).unwrap();
        }
        let _b = d.alloc(300).unwrap();
        assert_eq!(d.counters().peak_allocated, 700);
    }

    #[test]
    fn device_clones_share_state() {
        let d = Device::new(DeviceSpec::tiny(1000));
        let d2 = d.clone();
        let _buf = d.alloc(400).unwrap();
        assert_eq!(d2.allocated(), 400);
        d2.h2d(100);
        assert_eq!(d.counters().h2d_bytes, 100);
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let d = Device::new(DeviceSpec::tiny(100_000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        if let Ok(buf) = d.alloc(1000) {
                            d.h2d(1000);
                            drop(buf);
                        }
                    }
                });
            }
        });
        assert_eq!(d.allocated(), 0);
        assert_eq!(d.counters().h2d_bytes, d.counters().h2d_calls * 1000);
    }
}
