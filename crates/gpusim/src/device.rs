//! The simulated device: capacity enforcement and traffic counters.

use std::sync::Arc;

use parking_lot::Mutex;
use scalefbp_faults::{Channel, FaultInject, FaultKind, NoFaults};
use scalefbp_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::DeviceSpec;

/// Simulated FLOPs per voxel update — matches the cost model of
/// `scalefbp-backproject`'s kernel counters (one fused multiply-add per
/// interpolation tap plus addressing arithmetic).
pub const FLOPS_PER_UPDATE: u64 = 42;

/// Bucket bounds (bytes) for the transfer-size histogram: 64 KiB to 4 GiB
/// in 16× steps, spanning single-row slabs up to whole sub-volumes.
/// Public so alternative executors record `gpu.transfer.bytes` with the
/// identical bucketing (a cross-backend conformance requirement).
pub const TRANSFER_SIZE_BOUNDS: [u64; 5] = [
    64 * 1024,
    1024 * 1024,
    16 * 1024 * 1024,
    256 * 1024 * 1024,
    4 * 1024 * 1024 * 1024,
];

/// Errors from device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation would exceed the device memory capacity — the failure
    /// mode of the non-out-of-core baselines in Table 5 (RTK cannot build
    /// volumes beyond 8 GB on a 16 GB V100). Also injectable as a
    /// *transient* fault, in which case a retry succeeds.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// A host↔device copy failed transiently (injected fault; the
    /// simulated hardware has no spontaneous transfer errors).
    TransferError {
        /// Which transfer direction failed (`"h2d"` or `"d2h"`).
        op: &'static str,
        /// Bytes the failed transfer carried.
        bytes: u64,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, free {free} B"
                )
            }
            DeviceError::TransferError { op, bytes } => {
                write!(f, "device {op} transfer of {bytes} B failed")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Cumulative traffic/work counters of one device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceCounters {
    /// Host→device bytes transferred.
    pub h2d_bytes: u64,
    /// Device→host bytes transferred.
    pub d2h_bytes: u64,
    /// Number of H2D transfer calls.
    pub h2d_calls: u64,
    /// Number of D2H transfer calls.
    pub d2h_calls: u64,
    /// Voxel updates executed by kernels.
    pub kernel_updates: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Simulated seconds accumulated by transfers.
    pub transfer_secs: f64,
    /// Simulated seconds accumulated by kernels.
    pub kernel_secs: f64,
    /// High-water mark of allocated bytes.
    pub peak_allocated: u64,
}

struct Inner {
    spec: DeviceSpec,
    allocated: u64,
    /// Simulated-seconds accumulators stay `f64` (not registry nanos):
    /// callers assert exact equality with the per-call returns.
    transfer_secs: f64,
    kernel_secs: f64,
    /// Persistent compute-rate degradation from a fired
    /// [`FaultKind::SlowDevice`]: kernel durations are multiplied by
    /// `slow_factor` once accumulated kernel time reaches
    /// `slow_from_nanos`. `1.0` (the `NoFaults` value) leaves the
    /// modelled times bit-identical to an uninstrumented device.
    slow_factor: f64,
    slow_from_nanos: u64,
}

/// Cached registry handles for one device — registered at construction,
/// one atomic op per counted event afterwards.
struct DeviceMetrics {
    h2d_bytes: Counter,
    h2d_calls: Counter,
    d2h_bytes: Counter,
    d2h_calls: Counter,
    kernel_updates: Counter,
    kernel_launches: Counter,
    kernel_flops: Counter,
    transfer_nanos: Counter,
    kernel_nanos: Counter,
    peak_allocated: Gauge,
    transfer_sizes: Histogram,
}

impl DeviceMetrics {
    fn new(registry: &MetricsRegistry, rank: usize) -> Self {
        DeviceMetrics {
            h2d_bytes: registry.rank_counter("gpu.h2d.bytes", rank),
            h2d_calls: registry.rank_counter("gpu.h2d.calls", rank),
            d2h_bytes: registry.rank_counter("gpu.d2h.bytes", rank),
            d2h_calls: registry.rank_counter("gpu.d2h.calls", rank),
            kernel_updates: registry.rank_counter("gpu.kernel.updates", rank),
            kernel_launches: registry.rank_counter("gpu.kernel.launches", rank),
            kernel_flops: registry.rank_counter("gpu.kernel.flops", rank),
            transfer_nanos: registry.rank_counter("gpu.transfer.nanos", rank),
            kernel_nanos: registry.rank_counter("gpu.kernel.nanos", rank),
            peak_allocated: registry.rank_gauge("gpu.mem.peak_bytes", rank),
            transfer_sizes: registry.rank_histogram(
                "gpu.transfer.bytes",
                rank,
                &TRANSFER_SIZE_BOUNDS,
            ),
        }
    }
}

/// A simulated accelerator with enforced memory capacity and counted,
/// time-modelled transfers and kernel launches. Cheap to clone (shared
/// state).
#[derive(Clone)]
pub struct Device {
    inner: Arc<Mutex<Inner>>,
    metrics: Arc<DeviceMetrics>,
    registry: MetricsRegistry,
    /// Fault hook consulted by allocations and transfers; `NoFaults`
    /// unless the device was built with [`Device::with_injector`].
    injector: Arc<dyn FaultInject>,
    /// World rank this device belongs to (the fault plan's site address).
    rank: usize,
}

/// An RAII device-memory allocation; freed (and returned to the device's
/// budget) on drop.
pub struct DeviceBuffer {
    device: Arc<Mutex<Inner>>,
    bytes: u64,
}

impl DeviceBuffer {
    /// Allocation size in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl std::fmt::Debug for DeviceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        let mut inner = self.device.lock();
        inner.allocated -= self.bytes;
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Device")
            .field("spec", &inner.spec.name)
            .field("allocated", &inner.allocated)
            .finish()
    }
}

impl Device {
    /// Creates a device of the given spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_injector(spec, Arc::new(NoFaults), 0)
    }

    /// Creates a device whose allocations and transfers consult a fault
    /// injector, addressed as `rank` in the fault plan.
    pub fn with_injector(spec: DeviceSpec, injector: Arc<dyn FaultInject>, rank: usize) -> Self {
        Self::with_observability(spec, injector, rank, MetricsRegistry::new())
    }

    /// [`with_injector`](Self::with_injector) recording this device's
    /// counters (`gpu.h2d.bytes`, `gpu.kernel.flops`, …) into a shared
    /// registry, rank-labelled, so they land in the run's exported
    /// snapshot alongside communication and I/O metrics.
    pub fn with_observability(
        spec: DeviceSpec,
        injector: Arc<dyn FaultInject>,
        rank: usize,
        registry: MetricsRegistry,
    ) -> Self {
        Device {
            inner: Arc::new(Mutex::new(Inner {
                spec,
                allocated: 0,
                transfer_secs: 0.0,
                kernel_secs: 0.0,
                slow_factor: 1.0,
                slow_from_nanos: 0,
            })),
            metrics: Arc::new(DeviceMetrics::new(&registry, rank)),
            registry,
            injector,
            rank,
        }
    }

    /// The registry this device reports into.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The device spec.
    pub fn spec(&self) -> DeviceSpec {
        self.inner.lock().spec.clone()
    }

    /// Currently allocated bytes.
    pub fn allocated(&self) -> u64 {
        self.inner.lock().allocated
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        let inner = self.inner.lock();
        inner.spec.memory_bytes - inner.allocated
    }

    /// Allocates `bytes` of device memory, enforcing the capacity. An
    /// injected [`FaultKind::DeviceOom`] fails this call transiently
    /// (memory is not actually consumed, so retrying succeeds).
    pub fn alloc(&self, bytes: u64) -> Result<DeviceBuffer, DeviceError> {
        let mut inner = self.inner.lock();
        let free = inner.spec.memory_bytes - inner.allocated;
        if matches!(
            self.injector.on_op(self.rank, Channel::DeviceAlloc),
            Some(FaultKind::DeviceOom)
        ) {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                free: 0,
            });
        }
        if bytes > free {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                free,
            });
        }
        inner.allocated += bytes;
        self.metrics.peak_allocated.raise(inner.allocated as f64);
        Ok(DeviceBuffer {
            device: Arc::clone(&self.inner),
            bytes,
        })
    }

    /// Records a host→device copy; returns the simulated duration (s).
    /// Panics on an injected transfer fault — fault-aware callers use
    /// [`try_h2d`](Self::try_h2d).
    pub fn h2d(&self, bytes: u64) -> f64 {
        self.try_h2d(bytes).expect("unhandled injected h2d fault")
    }

    /// Fault-aware host→device copy: an injected
    /// [`FaultKind::TransferError`] fails the call transiently (no bytes
    /// counted; a retry succeeds).
    pub fn try_h2d(&self, bytes: u64) -> Result<f64, DeviceError> {
        if self.transfer_faulted() {
            return Err(DeviceError::TransferError { op: "h2d", bytes });
        }
        let mut inner = self.inner.lock();
        let secs = inner.spec.transfer_secs(bytes);
        inner.transfer_secs += secs;
        drop(inner);
        self.metrics.h2d_bytes.add(bytes);
        self.metrics.h2d_calls.inc();
        self.record_transfer(bytes, secs);
        Ok(secs)
    }

    /// Records a device→host copy; returns the simulated duration (s).
    /// Panics on an injected transfer fault — fault-aware callers use
    /// [`try_d2h`](Self::try_d2h).
    pub fn d2h(&self, bytes: u64) -> f64 {
        self.try_d2h(bytes).expect("unhandled injected d2h fault")
    }

    /// Fault-aware device→host copy (see [`try_h2d`](Self::try_h2d)).
    pub fn try_d2h(&self, bytes: u64) -> Result<f64, DeviceError> {
        if self.transfer_faulted() {
            return Err(DeviceError::TransferError { op: "d2h", bytes });
        }
        let mut inner = self.inner.lock();
        let secs = inner.spec.transfer_secs(bytes);
        inner.transfer_secs += secs;
        drop(inner);
        self.metrics.d2h_bytes.add(bytes);
        self.metrics.d2h_calls.inc();
        self.record_transfer(bytes, secs);
        Ok(secs)
    }

    /// Direction-independent transfer metrics (modelled duration as
    /// integer nanoseconds plus the size histogram).
    fn record_transfer(&self, bytes: u64, secs: f64) {
        self.metrics.transfer_nanos.add((secs * 1e9).round() as u64);
        self.metrics.transfer_sizes.observe(bytes);
    }

    fn transfer_faulted(&self) -> bool {
        matches!(
            self.injector.on_op(self.rank, Channel::DeviceTransfer),
            Some(FaultKind::TransferError)
        )
    }

    /// Records a back-projection launch of `updates` voxel updates; returns
    /// the simulated duration (s).
    ///
    /// The launch consults the fault injector on [`Channel::Compute`]: a
    /// fired [`FaultKind::SlowDevice`] permanently degrades this device's
    /// compute rate (modelled time only — the computed bits are produced
    /// elsewhere and are never touched). Under `NoFaults` the arithmetic
    /// is exactly the healthy path: `secs` is the same `f64` an
    /// uninstrumented device would return.
    pub fn launch_backprojection(&self, updates: u64) -> f64 {
        if let Some(FaultKind::SlowDevice { factor, from_nanos }) =
            self.injector.on_op(self.rank, Channel::Compute)
        {
            let mut inner = self.inner.lock();
            inner.slow_factor = inner.slow_factor.max(factor.max(1) as f64);
            inner.slow_from_nanos = from_nanos;
        }
        let mut inner = self.inner.lock();
        let honest = inner.spec.backprojection_secs(updates);
        let degraded = inner.slow_factor > 1.0
            && (inner.kernel_secs * 1e9).round() as u64 >= inner.slow_from_nanos;
        let secs = if degraded {
            honest * inner.slow_factor
        } else {
            honest
        };
        inner.kernel_secs += secs;
        drop(inner);
        self.metrics.kernel_updates.add(updates);
        self.metrics.kernel_launches.inc();
        self.metrics
            .kernel_flops
            .add(updates.saturating_mul(FLOPS_PER_UPDATE));
        self.metrics.kernel_nanos.add((secs * 1e9).round() as u64);
        secs
    }

    /// The device's current compute slowdown multiplier: `1.0` while
    /// healthy, the fired [`FaultKind::SlowDevice`] factor once degraded.
    pub fn slow_factor(&self) -> f64 {
        self.inner.lock().slow_factor
    }

    /// Snapshot of the counters (assembled from the registry-backed
    /// integer counters plus the device's simulated-seconds accumulators).
    pub fn counters(&self) -> DeviceCounters {
        let inner = self.inner.lock();
        DeviceCounters {
            h2d_bytes: self.metrics.h2d_bytes.get(),
            d2h_bytes: self.metrics.d2h_bytes.get(),
            h2d_calls: self.metrics.h2d_calls.get(),
            d2h_calls: self.metrics.d2h_calls.get(),
            kernel_updates: self.metrics.kernel_updates.get(),
            kernel_launches: self.metrics.kernel_launches.get(),
            transfer_secs: inner.transfer_secs,
            kernel_secs: inner.kernel_secs,
            peak_allocated: self.metrics.peak_allocated.get() as u64,
        }
    }

    /// Resets the counters (not the allocations). Registry-backed values
    /// are zeroed in place, so a shared registry sees the reset too.
    pub fn reset_counters(&self) {
        let mut inner = self.inner.lock();
        inner.transfer_secs = 0.0;
        inner.kernel_secs = 0.0;
        drop(inner);
        self.metrics.h2d_bytes.reset();
        self.metrics.d2h_bytes.reset();
        self.metrics.h2d_calls.reset();
        self.metrics.d2h_calls.reset();
        self.metrics.kernel_updates.reset();
        self.metrics.kernel_launches.reset();
        self.metrics.kernel_flops.reset();
        self.metrics.transfer_nanos.reset();
        self.metrics.kernel_nanos.reset();
        self.metrics.peak_allocated.reset();
        self.metrics.transfer_sizes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_enforces_capacity() {
        let d = Device::new(DeviceSpec::tiny(1000));
        let a = d.alloc(600).unwrap();
        assert_eq!(d.allocated(), 600);
        let err = d.alloc(500).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 500,
                free: 400
            }
        );
        drop(a);
        assert_eq!(d.allocated(), 0);
        d.alloc(1000).unwrap();
    }

    #[test]
    fn rtk_style_full_volume_fails_on_v100() {
        // Table 5: a 2048³ volume (32 GB) cannot be allocated on a 16 GB
        // V100 — the reason RTK's column shows ✗.
        let d = Device::new(DeviceSpec::v100_16gb());
        let vol_2048 = 2048u64 * 2048 * 2048 * 4;
        assert!(d.alloc(vol_2048).is_err());
        // A 1024³ volume (4 GB) fits.
        assert!(d.alloc(1024u64 * 1024 * 1024 * 4).is_ok());
    }

    #[test]
    fn counters_track_traffic_and_time() {
        let d = Device::new(DeviceSpec::tiny(1 << 20));
        let t1 = d.h2d(2_000_000);
        let t2 = d.d2h(4_000_000);
        let t3 = d.launch_backprojection(50_000_000);
        let c = d.counters();
        assert_eq!(c.h2d_bytes, 2_000_000);
        assert_eq!(c.d2h_bytes, 4_000_000);
        assert_eq!(c.h2d_calls, 1);
        assert_eq!(c.d2h_calls, 1);
        assert_eq!(c.kernel_updates, 50_000_000);
        assert_eq!(c.kernel_launches, 1);
        assert!((c.transfer_secs - (t1 + t2)).abs() < 1e-12);
        assert!((c.kernel_secs - t3).abs() < 1e-12);
        assert!(t2 > t1);
        d.reset_counters();
        assert_eq!(d.counters(), DeviceCounters::default());
    }

    #[test]
    fn peak_allocation_watermark() {
        let d = Device::new(DeviceSpec::tiny(1000));
        {
            let _a = d.alloc(700).unwrap();
        }
        let _b = d.alloc(300).unwrap();
        assert_eq!(d.counters().peak_allocated, 700);
    }

    #[test]
    fn device_clones_share_state() {
        let d = Device::new(DeviceSpec::tiny(1000));
        let d2 = d.clone();
        let _buf = d.alloc(400).unwrap();
        assert_eq!(d2.allocated(), 400);
        d2.h2d(100);
        assert_eq!(d.counters().h2d_bytes, 100);
    }

    #[test]
    fn injected_oom_and_transfer_faults_are_transient() {
        use scalefbp_faults::{FaultEvent, FaultInjector, FaultPlan};
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                rank: 3,
                channel: Channel::DeviceAlloc,
                op_index: 0,
                kind: FaultKind::DeviceOom,
            },
            FaultEvent {
                rank: 3,
                channel: Channel::DeviceTransfer,
                op_index: 1,
                kind: FaultKind::TransferError,
            },
        ]);
        let d = Device::with_injector(DeviceSpec::tiny(1000), FaultInjector::new(plan), 3);
        // First alloc hits the injected OOM; the retry succeeds.
        assert!(matches!(
            d.alloc(100),
            Err(DeviceError::OutOfMemory { free: 0, .. })
        ));
        let _buf = d.alloc(100).unwrap();
        // Transfer op 0 is clean, op 1 faults, op 2 (retry) succeeds.
        assert!(d.try_h2d(10).is_ok());
        assert_eq!(
            d.try_d2h(20),
            Err(DeviceError::TransferError {
                op: "d2h",
                bytes: 20
            })
        );
        assert!(d.try_d2h(20).is_ok());
        // Failed transfers never pollute the counters.
        assert_eq!(d.counters().d2h_calls, 1);
        assert_eq!(d.counters().d2h_bytes, 20);
    }

    #[test]
    fn injected_slow_device_degrades_kernel_time_after_threshold() {
        use scalefbp_faults::{FaultEvent, FaultInjector, FaultPlan};
        let spec = DeviceSpec::tiny(1 << 20);
        let healthy = Device::new(spec.clone());
        let h1 = healthy.launch_backprojection(1_000_000);
        // Slowdown ×3 once 1 launch worth of kernel nanos has accrued:
        // the first launch runs at full rate, later ones degraded.
        let from_nanos = (h1 * 1e9).round() as u64;
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 5,
            channel: Channel::Compute,
            op_index: 0,
            kind: FaultKind::SlowDevice {
                factor: 3,
                from_nanos,
            },
        }]);
        let d = Device::with_injector(spec, FaultInjector::new(plan), 5);
        assert_eq!(d.slow_factor(), 1.0);
        let t1 = d.launch_backprojection(1_000_000);
        assert_eq!(t1.to_bits(), h1.to_bits(), "pre-threshold launch is honest");
        assert_eq!(d.slow_factor(), 3.0);
        let t2 = d.launch_backprojection(1_000_000);
        assert_eq!(t2.to_bits(), (h1 * 3.0).to_bits(), "degraded launch is ×3");
        // Model time is deterministic: a replay is bit-identical.
        let d2 = Device::with_injector(
            d.spec(),
            FaultInjector::new(
                FaultPlan::parse(&format!("rank 5 compute op 0 slow:3:{from_nanos}")).unwrap(),
            ),
            5,
        );
        assert_eq!(d2.launch_backprojection(1_000_000).to_bits(), t1.to_bits());
        assert_eq!(d2.launch_backprojection(1_000_000).to_bits(), t2.to_bits());
    }

    #[test]
    fn registry_receives_rank_labelled_metrics() {
        let reg = MetricsRegistry::new();
        let d = Device::with_observability(
            DeviceSpec::tiny(1 << 30),
            Arc::new(NoFaults),
            2,
            reg.clone(),
        );
        let _buf = d.alloc(4096).unwrap();
        d.h2d(1_000_000);
        d.d2h(2_000_000);
        d.launch_backprojection(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("gpu.h2d.bytes", Some(2)), Some(1_000_000));
        assert_eq!(snap.counter("gpu.d2h.bytes", Some(2)), Some(2_000_000));
        assert_eq!(
            snap.counter("gpu.kernel.flops", Some(2)),
            Some(10 * FLOPS_PER_UPDATE)
        );
        assert_eq!(snap.gauge("gpu.mem.peak_bytes", Some(2)), Some(4096.0));
        // Transfer durations mirror into integer nanoseconds.
        assert!(snap.counter("gpu.transfer.nanos", Some(2)).unwrap() > 0);
    }

    #[test]
    fn concurrent_allocation_is_safe() {
        let d = Device::new(DeviceSpec::tiny(100_000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        if let Ok(buf) = d.alloc(1000) {
                            d.h2d(1000);
                            drop(buf);
                        }
                    }
                });
            }
        });
        assert_eq!(d.allocated(), 0);
        assert_eq!(d.counters().h2d_bytes, d.counters().h2d_calls * 1000);
    }
}
