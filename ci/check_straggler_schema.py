#!/usr/bin/env python3
"""Validates BENCH_straggler.json against the schema CI relies on.

Usage: check_straggler_schema.py OUT_DIR

The bench harness asserts the straggler-economics contracts in-process
(speculation never loses, segmented wastes less than global, hedging
never worsens the makespan) before writing the file; this script is the
trust-but-verify layer that the recorded fields actually say so, plus
shape checks so a silently dropped field fails loudly.
"""

import json
import sys

POINT_KEYS = (
    "slow_factor", "wait_wall_secs", "speculative_wall_secs", "speedup",
    "wasted_gpu_secs_segmented", "wasted_gpu_secs_global",
)
CELL_KEYS = (
    "hedging", "completed", "makespan_nanos", "p99_latency_nanos",
    "stragglers", "hedges_issued", "hedges_won", "hedges_wasted",
)


def main() -> None:
    out_dir = sys.argv[1]
    doc = json.load(open(f"{out_dir}/BENCH_straggler.json"))
    assert doc["benchmark"] == "straggler"
    assert isinstance(doc["quick"], bool)

    dist = doc["distributed"]
    assert dist["dataset"] == "coffee_bean"
    assert dist["machine"] == "abci_v100"
    for key in ("nr", "ng", "nc"):
        assert dist[key] >= 1, f"bad layout {key}: {dist[key]}"
    assert dist["timeout_scale"] > 0

    points = dist["points"]
    assert len(points) >= 3, "need a slow-factor sweep, not a point"
    for p in points:
        for key in POINT_KEYS:
            assert key in p, f"point missing {key}"
        # First result wins: speculation can never lose to waiting.
        assert p["speculative_wall_secs"] <= p["wait_wall_secs"] + 1e-9, p
        assert p["speedup"] >= 1.0 - 1e-9, p
        # The paper's segmented decomposition strands one group, not
        # the whole machine, while a straggler is recomputed.
        assert p["wasted_gpu_secs_segmented"] < p["wasted_gpu_secs_global"], p
    factors = [p["slow_factor"] for p in points]
    assert factors == sorted(factors) and len(set(factors)) == len(factors)
    waits = [p["wait_wall_secs"] for p in points]
    assert all(b >= a - 1e-9 for a, b in zip(waits, waits[1:])), (
        "wait-it-out wall must degrade with the slow factor"
    )
    # Past detection-plus-one-recompute, speculation must strictly win.
    cap = dist["timeout_scale"] + 1.0
    for p in points:
        if p["slow_factor"] > cap:
            assert p["speculative_wall_secs"] < p["wait_wall_secs"], p

    serve = doc["serve"]
    assert serve["devices"] >= 2 and serve["jobs"] >= 1
    assert serve["aging_nanos"] > 0
    cells = {c["hedging"]: c for c in serve["cells"]}
    assert set(cells) == {True, False}, "need a hedged and an unhedged cell"
    for c in cells.values():
        for key in CELL_KEYS:
            assert key in c, f"cell missing {key}"
        assert c["completed"] == serve["jobs"], "stragglers must not lose jobs"
        assert c["stragglers"] >= 1, "slow devices were never detected"
    hedged, waited = cells[True], cells[False]
    assert hedged["hedges_issued"] >= 1, "hedging on but no hedges issued"
    assert hedged["hedges_won"] >= 1, "no hedge ever beat its original"
    assert hedged["hedges_won"] <= hedged["hedges_issued"]
    for key in ("hedges_issued", "hedges_won", "hedges_wasted"):
        assert waited[key] == 0, f"hedging off but {key} nonzero"
    assert hedged["makespan_nanos"] <= waited["makespan_nanos"], (
        "hedging worsened the makespan"
    )

    best = max(p["speedup"] for p in points)
    print(f"straggler JSON schema OK ({len(points)} distributed points, "
          f"speculation up to {best:.2f}x, "
          f"{hedged['hedges_won']}/{hedged['hedges_issued']} hedges won)")


if __name__ == "__main__":
    main()
