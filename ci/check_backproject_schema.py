#!/usr/bin/env python3
"""Validates BENCH_backproject.json against the schema CI relies on.

Usage: check_backproject_schema.py OUT_DIR [--backend avx2|scalar]

The bench harness asserts the bitwise and drift contracts in-process
before writing the file; this script is the trust-but-verify layer that
the recorded fields actually say so, plus shape checks so a silently
dropped field fails loudly.
"""

import json
import sys

KERNELS = {"parallel", "incremental", "blocked", "simd", "simd-batched"}
DRIFT_KERNELS = {"incremental", "simd-batched"}
WORKLOAD_KEYS = (
    "name", "nx", "ny", "nz", "np", "nu", "nv", "kernels",
    "speedup_blocked_vs_parallel", "speedup_simd_vs_blocked",
    "speedup_simd_batched_vs_blocked",
)
CONTRACT_KEYS = (
    "drift_significance", "simd_batched_ulp_bound",
    "simd_batched_rel_abs_bound", "incremental_rel_abs_bound",
    "incremental_rel_rmse_bound",
)


def main() -> None:
    out_dir = sys.argv[1]
    expect_backend = None
    if "--backend" in sys.argv:
        expect_backend = sys.argv[sys.argv.index("--backend") + 1]

    bp = json.load(open(f"{out_dir}/BENCH_backproject.json"))
    assert bp["benchmark"] == "backproject"
    # The executor backend the timings were measured on. The harness
    # refuses to emit the file unless the sim backend agreed bitwise
    # with this one in-process, so "cpu" here certifies conformance.
    assert bp["backend"] == "cpu", bp.get("backend")
    assert bp["simd_backend"] in ("avx2", "scalar"), bp["simd_backend"]
    if expect_backend is not None:
        assert bp["simd_backend"] == expect_backend, (
            f"expected {expect_backend} backend, got {bp['simd_backend']}"
        )
    assert isinstance(bp["detected_features"], list)
    for key in CONTRACT_KEYS:
        assert key in bp["contracts"], f"missing contract {key}"
        assert bp["contracts"][key] > 0

    for w in bp["workloads"]:
        for key in WORKLOAD_KEYS:
            assert key in w, f"missing {key}"
        kernels = {k["kernel"]: k for k in w["kernels"]}
        assert KERNELS <= kernels.keys(), kernels.keys()
        for k in kernels.values():
            assert k["secs"] > 0 and k["updates"] > 0
        # The harness bit-compares before reporting; trust but verify.
        assert kernels["blocked"]["bit_identical_to_parallel"] is True
        assert kernels["simd"]["bit_identical_to_parallel"] is True
        # The non-bitwise kernels must carry their measured drift, inside
        # the contract the harness asserted in-process.
        for name in DRIFT_KERNELS:
            k = kernels[name]
            for field in ("drift_ulp_significant", "drift_rel_abs",
                          "drift_rel_rmse"):
                assert field in k, f"{name} missing {field}"
        sb = kernels["simd-batched"]
        assert sb["drift_ulp_significant"] <= bp["contracts"]["simd_batched_ulp_bound"]
        assert sb["drift_rel_abs"] <= bp["contracts"]["simd_batched_rel_abs_bound"]
        inc = kernels["incremental"]
        assert inc["drift_rel_abs"] <= bp["contracts"]["incremental_rel_abs_bound"]
        assert inc["drift_rel_rmse"] <= bp["contracts"]["incremental_rel_rmse_bound"]
    print(f"backproject JSON schema OK ({bp['simd_backend']} backend, "
          f"features: {', '.join(bp['detected_features']) or 'none'})")


if __name__ == "__main__":
    main()
