#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation section.
# Outputs land in results/ (text) and the current directory (PGM images).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

cargo build --release --workspace

for bin in table2_ablation table5_outofcore fig8_reduce_slice fig10_timeline \
           fig12_roofline fig13_strong_scaling fig14_weak_scaling fig15_gups \
           fig11_renderings \
           ir_vs_fbp nc_ablation straggler_analysis layout_search mar_workflow; do
  echo "=== $bin ==="
  cargo run --release -p scalefbp-bench --bin "$bin" | tee "results/$bin.txt"
done

for ex in quickstart microscopy_coffee_bean clinical_cbct_outofcore distributed_cluster carm_short_scan; do
  echo "=== example: $ex ==="
  cargo run --release -p scalefbp-examples --example "$ex" | tee "results/example_$ex.txt"
done

echo "All evaluation artefacts regenerated under results/."
